package analysis

import (
	"go/ast"
	"go/types"
)

// LockDiscipline enforces the shard package's locking rules, the ones
// the incremental-resize and degraded-mode machinery depend on:
//
//  1. Every mu.Lock()/mu.RLock() has a matching Unlock()/RUnlock() on
//     the same receiver somewhere in the same function (deferred or
//     explicit) — a shard lock never leaks out of the function that
//     took it.
//  2. The raw table factory (the Config.NewTable function value, stored
//     as Engine.create) is invoked only inside the allocTable
//     chokepoint, so every allocation is fallible in exactly one place
//     and the fault injector's Alloc hook covers all of them.
//  3. No call into the exec package while a shard lock is held: a pool
//     submission under a shard lock can deadlock against a task that
//     needs the same shard (the documented must-not-call-back-into-the-
//     engine contract, checked from the other side).
//  4. The shard's seqlock word (the atomic.Uint64 field named seq) is
//     bumped only inside the window helpers lockShard/unlockShard.
//     Wait-free readers validate that word; a bump anywhere else either
//     tears a window open without the writer lock or leaves the
//     sequence odd with no writer — both silently corrupt reads.
//  5. The shard's published view pointer (the atomic.Pointer field named
//     view) is stored only inside publish, the one epoch-publication
//     chokepoint (which itself asserts it runs inside a writer's
//     window).
//
// lockShard/unlockShard calls count as Lock/Unlock for rules 1 and 3 —
// they ARE the shard writer lock, wrapped in the sequence bump — and
// the helper definitions themselves are exempt from rule 1 (they split
// an acquire and a release across two functions by design).
//
// The analysis is intra-procedural and syntactic about lock identity
// (receivers are matched textually), which is exactly as strong as the
// package's own convention: shard takes locks and releases them in the
// same function, on the same expression.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "shard locking rules: paired Lock/Unlock, allocTable chokepoint, no exec calls under a shard lock, seqlock bumps and view stores only at their chokepoints",
	Run:  runLockDiscipline,
}

// lockCall describes one mutex method call: the textual receiver and
// whether it is the read flavor.
type lockCall struct {
	recv string
	read bool
}

// asMutexCall decodes call as recv.<method>() on a sync.Mutex or
// sync.RWMutex and returns the receiver text, the method name, and ok.
func (p *Pass) asMutexCall(call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := p.typeOf(sel.X)
	if !typeIs(t, "sync", "Mutex") && !typeIs(t, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// asShardLockCall decodes call as a shard lock transition: either a raw
// mutex method (asMutexCall) or one of the seqlock window helpers. The
// returned method is the call's own name — "Lock", "RLock", "Unlock",
// "RUnlock", "lockShard" or "unlockShard" — so reports can quote the
// idiom the code actually used.
func (p *Pass) asShardLockCall(call *ast.CallExpr) (string, string, bool) {
	if recv, method, ok := p.asMutexCall(call); ok {
		return recv, method, ok
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "lockShard", "unlockShard":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// isWindowHelper reports whether fd defines one of the seqlock window
// helpers, which are exempt from lock pairing (they split the acquire
// and release across two functions by design) and are the only
// functions allowed to bump the sequence word.
func isWindowHelper(fd *ast.FuncDecl) bool {
	return fd.Name.Name == "lockShard" || fd.Name.Name == "unlockShard"
}

func runLockDiscipline(pass *Pass) error {
	if PkgBase(pass.Pkg.Path()) != "shard" {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPairing(pass, fd)
			checkFactoryChokepoint(pass, fd)
			checkSeqChokepoint(pass, fd)
			checkPublishChokepoint(pass, fd)
			scanHeldRegions(pass, fd.Body.List, nil)
		}
	}
	return nil
}

// checkLockPairing requires a matching unlock for every lock taken in
// fd. Raw mutex calls and the seqlock window helpers pair within their
// own idiom (a lockShard answered by a bare mu.Unlock would skip the
// closing sequence bump, and the differing receiver texts keep the two
// from cross-matching).
func checkLockPairing(pass *Pass, fd *ast.FuncDecl) {
	if isWindowHelper(fd) {
		return
	}
	type site struct {
		pos        []ast.Node
		call       lockCall
		verb, want string
	}
	var locks []site
	unlocks := map[lockCall]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := pass.asShardLockCall(call)
		if !ok {
			return true
		}
		switch method {
		case "Lock":
			locks = append(locks, site{[]ast.Node{call}, lockCall{recv, false}, "Lock", "Unlock"})
		case "RLock":
			locks = append(locks, site{[]ast.Node{call}, lockCall{recv, true}, "RLock", "RUnlock"})
		case "lockShard":
			locks = append(locks, site{[]ast.Node{call}, lockCall{recv, false}, "lockShard", "unlockShard"})
		case "Unlock", "unlockShard":
			unlocks[lockCall{recv, false}] = true
		case "RUnlock":
			unlocks[lockCall{recv, true}] = true
		}
		return true
	})
	for _, l := range locks {
		if !unlocks[l.call] {
			pass.Reportf(l.pos[0].Pos(), "%s.%s() without a matching %s in this function: a shard lock must be released where it was taken (defer it)", l.call.recv, l.verb, l.want)
		}
	}
}

// checkFactoryChokepoint flags raw table-factory invocations outside
// allocTable.
func checkFactoryChokepoint(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name == "allocTable" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		default:
			return true
		}
		if name == "create" || name == "NewTable" {
			pass.Reportf(call.Pos(), "raw table-factory call outside allocTable: every allocation must pass through the one fallible chokepoint (fault injection, degraded-mode accounting)")
		}
		return true
	})
}

// checkSeqChokepoint flags mutations of a shard's seqlock word outside
// the window helpers: readers validate that word, so an odd/even
// transition from anywhere else either opens a window without the
// writer lock or strands the sequence odd — both corrupt wait-free
// reads without any test failing deterministically.
func checkSeqChokepoint(pass *Pass, fd *ast.FuncDecl) {
	if isWindowHelper(fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Add", "Store", "Swap", "CompareAndSwap", "And", "Or":
		default:
			return true
		}
		field, ok := sel.X.(*ast.SelectorExpr)
		if !ok || field.Sel.Name != "seq" {
			return true
		}
		if !typeIs(pass.typeOf(sel.X), "atomic", "Uint64") {
			return true
		}
		pass.Reportf(call.Pos(), "seqlock word mutated outside lockShard/unlockShard: readers validate this sequence, so every transition must come from the window helpers")
		return true
	})
}

// checkPublishChokepoint flags stores to a shard's published view
// pointer outside publish, the one epoch-publication chokepoint (which
// asserts it runs inside a writer's seqlock window and keeps the
// generation counter and publication telemetry honest).
func checkPublishChokepoint(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name == "publish" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Store", "Swap", "CompareAndSwap":
		default:
			return true
		}
		field, ok := sel.X.(*ast.SelectorExpr)
		if !ok || field.Sel.Name != "view" {
			return true
		}
		if !typeIs(pass.typeOf(sel.X), "atomic", "Pointer") {
			return true
		}
		pass.Reportf(call.Pos(), "shard view stored outside publish: every epoch publication must pass through the one chokepoint (seqlock-window assertion, generation counter, telemetry)")
		return true
	})
}

// scanHeldRegions walks a statement list tracking which shard locks are
// held (raw mutex calls and the seqlock window helpers alike), and
// flags exec-package calls made while any is. held maps receiver text
// to the read/write flavor last taken; nested blocks see a copy, so
// branch-local locks do not leak into siblings.
func scanHeldRegions(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	held = copyHeld(held)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, method, ok := pass.asShardLockCall(call); ok {
					switch method {
					case "Lock", "RLock", "lockShard":
						held[recv] = true
					case "Unlock", "RUnlock", "unlockShard":
						delete(held, recv)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// A deferred unlock (either idiom) keeps the lock held to
			// function end by design; the region below stays "held".
			if _, _, ok := pass.asShardLockCall(&ast.CallExpr{Fun: s.Call.Fun}); ok {
				continue
			}
		}
		if len(held) > 0 {
			flagExecCalls(pass, stmt, held)
		}
		// Recurse into nested statement lists with the current view.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanHeldRegions(pass, s.List, held)
		case *ast.IfStmt:
			scanHeldRegions(pass, s.Body.List, held)
			if el, ok := s.Else.(*ast.BlockStmt); ok {
				scanHeldRegions(pass, el.List, held)
			}
		case *ast.ForStmt:
			scanHeldRegions(pass, s.Body.List, held)
		case *ast.RangeStmt:
			scanHeldRegions(pass, s.Body.List, held)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeldRegions(pass, cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeldRegions(pass, cc.Body, held)
				}
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// flagExecCalls reports exec-package calls inside stmt (excluding nested
// statement lists, which the caller recurses into separately with the
// right held set, but including expressions like call arguments).
func flagExecCalls(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt:
			return false // handled by the caller's recursion
		}
		if call, ok := n.(*ast.CallExpr); ok && pass.isExecCall(call) {
			var some string
			for recv := range held {
				some = recv
				break
			}
			pass.Reportf(call.Pos(), "call into exec while %s is locked: a pool submission under a shard lock can deadlock against tasks touching the same shard — release the lock first", some)
		}
		return true
	})
}
