package analysis

import (
	"go/ast"
	"go/types"
)

// concurrencyOwners are the packages allowed to own raw concurrency
// primitives. Everything above them must express parallelism through
// exec's pool (or shard's engine), so fan-out stays bounded, errors flow
// through the first-error convention, and panics are contained.
var concurrencyOwners = map[string]bool{
	"exec":  true,
	"shard": true,
}

// NoGoroutine enforces the PR 5 consolidation invariant: no `go`
// statements, no sync.WaitGroup, and no raw channel construction outside
// the exec and shard packages. A bare goroutine bypasses bounded
// fan-out, first-error propagation, and panic containment all at once; a
// WaitGroup or a hand-made channel pool is the tell that one is coming.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid go statements, sync.WaitGroup, and raw channel construction outside exec and shard",
	Run:  runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	if concurrencyOwners[PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement outside exec/shard: submit the work to an exec.Pool (bounded fan-out, first-error, panic containment) instead")
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.IsType() {
							if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
								pass.Reportf(n.Pos(), "raw channel construction outside exec/shard: hand-rolled worker pools belong in exec")
							}
						}
					}
				}
			case ast.Expr:
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.IsType() && typeIs(tv.Type, "sync", "WaitGroup") {
					pass.Reportf(n.Pos(), "sync.WaitGroup outside exec/shard: use exec.Pool's scheduling and Close instead of hand-rolled joins")
					return false // one report per WaitGroup type expression
				}
			}
			return true
		})
	}
	return nil
}
