package analysis

import (
	"path/filepath"
	"strconv"
)

// UnsafeConfine confines `unsafe` to the explicit allowlist: the probe
// kernel's column view (table/policy.go, where both slot layouts alias
// one []uint64 view over their backing arrays) and internal/vec (the
// SIMD stand-in kernels, should they ever need layout-exact views). The
// aliasing in policy.go is checkptr- and ASan-exercised by the sanitizer
// CI job plus FuzzColumnView; a new unsafe import anywhere else would
// dodge that coverage, so it is refused outright.
var UnsafeConfine = &Analyzer{
	Name: "unsafeconfine",
	Doc:  "allow the unsafe import only in table/policy.go and internal/vec",
	Run:  runUnsafeConfine,
}

// unsafeAllowed reports whether the file may import unsafe.
func unsafeAllowed(pkgBase, fileBase string) bool {
	switch pkgBase {
	case "vec":
		return true
	case "table":
		return fileBase == "policy.go"
	}
	return false
}

func runUnsafeConfine(pass *Pass) error {
	base := PkgBase(pass.Pkg.Path())
	for _, f := range pass.sourceFiles() {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p != "unsafe" {
				continue
			}
			file := filepath.Base(pass.Fset.Position(imp.Pos()).Filename)
			if !unsafeAllowed(base, file) {
				pass.Reportf(imp.Pos(), "unsafe imported outside the allowlist (table/policy.go, internal/vec): unsafe aliasing must stay where the checkptr/ASan jobs and FuzzColumnView exercise it")
			}
		}
	}
	return nil
}
