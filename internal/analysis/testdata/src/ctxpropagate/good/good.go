// Package good threads the caller's context into every pool it builds;
// nothing here diagnoses.
package good

import (
	"context"

	"ctxpropagate/exec"
)

// RunConfig carries the caller's context.
type RunConfig struct {
	Threads int
	Ctx     context.Context
}

func run(cfg RunConfig) error {
	pool := exec.NewPool(exec.Config{Workers: cfg.Threads, Ctx: cfg.Ctx})
	defer pool.Close()
	return exec.RunTasks(exec.Config{4, context.Background()}, 4, func(_, _ int) error { return nil })
}

// free has no Config parameter: building an uncancellable pool is its
// caller's informed choice, not a dropped context.
func free() {
	pool := exec.NewPool(exec.Config{Workers: 1})
	pool.Close()
}
