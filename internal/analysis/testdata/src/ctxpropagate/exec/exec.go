// Package exec is a fixture stub of the real pool config: Workers plus
// the Ctx field the analyzer insists callers thread through.
package exec

import "context"

// Config parameterizes a stub pool.
type Config struct {
	Workers int
	Ctx     context.Context
}

// Pool is the stub executor.
type Pool struct{ cfg Config }

// NewPool builds a stub pool.
func NewPool(cfg Config) *Pool { return &Pool{cfg: cfg} }

// Close releases nothing.
func (p *Pool) Close() {}

// ForEach runs fn over n tasks inline.
func (p *Pool) ForEach(n int, fn func(worker, task int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(0, i); err != nil {
			return err
		}
	}
	return nil
}

// RunTasks is the one-shot spelling.
func RunTasks(cfg Config, n int, fn func(worker, task int) error) error {
	return NewPool(cfg).ForEach(n, fn)
}
