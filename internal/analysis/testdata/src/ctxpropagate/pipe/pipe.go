// Package pipe stands in for the real streaming pipeline's runtime
// construction: pipe.Config carries the caller's Ctx, and every
// exec.Config literal the runtime builds must thread it through —
// cancellation mid-stream only works if the pool can see the context.
package pipe

import (
	"context"

	"ctxpropagate/exec"
)

// Config parameterizes one pipeline run, like the real pipe.Config.
type Config struct {
	Workers    int
	MorselSize int
	Ctx        context.Context
}

// runtime owns the pool a terminal drives.
type runtime struct {
	pool *exec.Pool
}

// newRuntime is the real package's construction: the caller's Ctx lands
// in the pool's config, so cancellation reaches every morsel boundary.
func newRuntime(cfg Config) *runtime {
	return &runtime{pool: exec.NewPool(exec.Config{
		Workers: cfg.Workers,
		Ctx:     cfg.Ctx,
	})}
}

// leakyRuntime drops the stream's context on the floor: the terminal
// would run to completion no matter what the caller cancelled.
func leakyRuntime(cfg Config) *runtime {
	return &runtime{pool: exec.NewPool(exec.Config{Workers: cfg.Workers})} // want `exec\.Config built without Ctx while cfg carries one`
}
