// Package bad accepts a cancellable config and then drops its context
// on the floor: the pools it builds are uncancellable.
package bad

import (
	"context"

	"ctxpropagate/exec"
)

// RunConfig carries the caller's context.
type RunConfig struct {
	Threads int
	Ctx     context.Context
}

func run(cfg RunConfig) error {
	pool := exec.NewPool(exec.Config{Workers: cfg.Threads}) // want `exec\.Config built without Ctx while cfg carries one`
	defer pool.Close()
	return exec.RunTasks(exec.Config{Workers: 1}, 4, func(_, _ int) error { return nil }) // want `exec\.Config built without Ctx while cfg carries one`
}
