// Package table mirrors the real kernel's confinement: policy.go is the
// one blessed unsafe site, and any other file in the package is not.
package table

import "unsafe"

// view is the blessed aliasing idiom: a flat view over a backing slice.
func view(s []uint64) *uint64 {
	return (*uint64)(unsafe.Pointer(unsafe.SliceData(s)))
}
