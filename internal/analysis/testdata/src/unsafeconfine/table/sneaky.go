package table

import "unsafe" // want `unsafe imported outside the allowlist`

// alias smuggles unsafe into the right package but the wrong file: the
// allowlist is per-file, not per-package.
func alias(p *uint64) unsafe.Pointer { return unsafe.Pointer(p) }
