// Package bad imports unsafe from an unblessed location: aliasing here
// would dodge the checkptr/ASan jobs that only exercise the allowlist.
package bad

import "unsafe" // want `unsafe imported outside the allowlist`

func addr(p *uint64) uintptr { return uintptr(unsafe.Pointer(p)) }
