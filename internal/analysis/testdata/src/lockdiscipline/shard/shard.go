// Package shard is a fixture of the locking discipline: the good
// functions follow the real engine's idioms (defer-paired locks, all
// allocation through allocTable, exec submissions only after release),
// the bad ones each break exactly one rule.
package shard

import (
	"sync"

	"lockdiscipline/exec"
)

type table struct{ n int }

type state struct {
	mu  sync.RWMutex
	tab *table
}

// Engine mirrors the real engine's shape: a raw factory stored as
// create, a pool handle, and per-shard locked state.
type Engine struct {
	shards []state
	create func() *table
	pool   *exec.Pool
}

// allocTable is the one fallible allocation chokepoint: the only
// function allowed to invoke the raw factory.
func (e *Engine) allocTable() *table { return e.create() }

// goodSwap follows the discipline end to end.
func (e *Engine) goodSwap(i int) {
	s := &e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab = e.allocTable()
}

// goodRead pairs the read lock explicitly.
func (e *Engine) goodRead(i int) int {
	s := &e.shards[i]
	s.mu.RLock()
	n := s.tab.n
	s.mu.RUnlock()
	return n
}

// goodSubmit releases the shard lock before submitting to the pool.
func (e *Engine) goodSubmit(i int) error {
	s := &e.shards[i]
	s.mu.Lock()
	tab := s.tab
	s.mu.Unlock()
	return e.pool.ForEach(tab.n, func(_, _ int) error { return nil })
}

// badLeak takes the lock and returns without releasing it.
func (e *Engine) badLeak(i int) {
	s := &e.shards[i]
	s.mu.Lock() // want `s\.mu\.Lock\(\) without a matching Unlock`
	s.tab = e.allocTable()
}

// badReadLeak does the same with the read flavor.
func (e *Engine) badReadLeak(i int) int {
	s := &e.shards[i]
	s.mu.RLock() // want `s\.mu\.RLock\(\) without a matching RUnlock`
	return s.tab.n
}

// badFactory invokes the raw factory outside allocTable.
func (e *Engine) badFactory(i int) {
	e.shards[i].tab = e.create() // want `raw table-factory call outside allocTable`
}

// badSubmit submits to the pool while the shard lock is held.
func (e *Engine) badSubmit(i int) error {
	s := &e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.pool.ForEach(1, func(_, _ int) error { return nil }) // want `call into exec while s\.mu is locked`
}
