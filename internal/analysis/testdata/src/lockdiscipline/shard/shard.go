// Package shard is a fixture of the locking discipline: the good
// functions follow the real engine's idioms (defer-paired locks, all
// allocation through allocTable, exec submissions only after release),
// the bad ones each break exactly one rule.
package shard

import (
	"sync"
	"sync/atomic"

	"lockdiscipline/exec"
)

type table struct{ n int }

type state struct {
	mu  sync.RWMutex
	tab *table
}

// Engine mirrors the real engine's shape: a raw factory stored as
// create, a pool handle, and per-shard locked state.
type Engine struct {
	shards []state
	create func() *table
	pool   *exec.Pool
}

// allocTable is the one fallible allocation chokepoint: the only
// function allowed to invoke the raw factory.
func (e *Engine) allocTable() *table { return e.create() }

// goodSwap follows the discipline end to end.
func (e *Engine) goodSwap(i int) {
	s := &e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab = e.allocTable()
}

// goodRead pairs the read lock explicitly.
func (e *Engine) goodRead(i int) int {
	s := &e.shards[i]
	s.mu.RLock()
	n := s.tab.n
	s.mu.RUnlock()
	return n
}

// goodSubmit releases the shard lock before submitting to the pool.
func (e *Engine) goodSubmit(i int) error {
	s := &e.shards[i]
	s.mu.Lock()
	tab := s.tab
	s.mu.Unlock()
	return e.pool.ForEach(tab.n, func(_, _ int) error { return nil })
}

// badLeak takes the lock and returns without releasing it.
func (e *Engine) badLeak(i int) {
	s := &e.shards[i]
	s.mu.Lock() // want `s\.mu\.Lock\(\) without a matching Unlock`
	s.tab = e.allocTable()
}

// badReadLeak does the same with the read flavor.
func (e *Engine) badReadLeak(i int) int {
	s := &e.shards[i]
	s.mu.RLock() // want `s\.mu\.RLock\(\) without a matching RUnlock`
	return s.tab.n
}

// badFactory invokes the raw factory outside allocTable.
func (e *Engine) badFactory(i int) {
	e.shards[i].tab = e.create() // want `raw table-factory call outside allocTable`
}

// badSubmit submits to the pool while the shard lock is held.
func (e *Engine) badSubmit(i int) error {
	s := &e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.pool.ForEach(1, func(_, _ int) error { return nil }) // want `call into exec while s\.mu is locked`
}

// metrics is a stub of the padded-stripe recorder the real engine
// attaches: recording is a plain atomic add, so the discipline has
// nothing to say about the recording itself — only about where the
// surrounding code takes and releases shard locks.
type metrics struct {
	stripes [8]struct {
		n atomic.Uint64
		_ [56]byte
	}
}

func (m *metrics) record(i int, d uint64) { m.stripes[i&7].n.Add(d) }

// goodRecordOutsideLock mirrors the real scalar op wrappers: explicit
// release first, then the atomic record against the released shard.
func (e *Engine) goodRecordOutsideLock(i int, m *metrics) int {
	s := &e.shards[i]
	s.mu.Lock()
	n := s.tab.n
	s.mu.Unlock()
	m.record(i, uint64(n))
	return n
}

// goodRecordUnderLock is legal too: an atomic add is not an exec call,
// so holding the shard lock across it breaks no rule.
func (e *Engine) goodRecordUnderLock(i int, m *metrics) {
	s := &e.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	m.record(i, uint64(s.tab.n))
}

// badSnapshotSubmit folds a metrics snapshot into the pool while the
// read lock is still held — the recording is fine, the submission is
// the violation.
func (e *Engine) badSnapshotSubmit(i int, m *metrics) error {
	s := &e.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	m.record(i, uint64(s.tab.n))
	return e.pool.ForEach(1, func(_, _ int) error { return nil }) // want `call into exec while s\.mu is locked`
}

// badRecordLeak records after taking a lock it never releases; the
// atomic add does not launder the leak.
func (e *Engine) badRecordLeak(i int, m *metrics) {
	s := &e.shards[i]
	s.mu.Lock() // want `s\.mu\.Lock\(\) without a matching Unlock`
	m.record(i, uint64(s.tab.n))
}

// seqState mirrors the real engine's wait-free-read shard: a writer
// mutex, the seqlock word readers validate, and the published view
// pointer.
type seqState struct {
	mu   sync.Mutex
	seq  atomic.Uint64
	view atomic.Pointer[table]
}

// lockShard/unlockShard are the seqlock window helpers: the only
// functions allowed to touch seq, and exempt from lock pairing (the
// acquire and release are split across them by design).
func (s *seqState) lockShard() {
	s.mu.Lock()
	s.seq.Add(1)
}

func (s *seqState) unlockShard() {
	s.seq.Add(1)
	s.mu.Unlock()
}

// publish is the one view-publication chokepoint.
func (e *Engine) publish(s *seqState, t *table) {
	s.view.Store(t)
}

// goodWindow follows the window idiom end to end: helper-paired lock,
// in-window mutation, publication through the chokepoint.
func (e *Engine) goodWindow(s *seqState) {
	s.lockShard()
	defer s.unlockShard()
	e.publish(s, e.allocTable())
}

// goodWindowSubmit releases the window before submitting to the pool.
func (e *Engine) goodWindowSubmit(s *seqState) error {
	s.lockShard()
	t := s.view.Load()
	s.unlockShard()
	return e.pool.ForEach(t.n, func(_, _ int) error { return nil })
}

// badWindowLeak opens a window and returns without closing it: readers
// see an odd sequence forever and every read falls back to the lock.
func (e *Engine) badWindowLeak(s *seqState) {
	s.lockShard() // want `s\.lockShard\(\) without a matching unlockShard`
	e.publish(s, e.allocTable())
}

// badWindowSubmit submits to the pool while the window (and therefore
// the writer lock) is held.
func (e *Engine) badWindowSubmit(s *seqState) error {
	s.lockShard()
	defer s.unlockShard()
	return e.pool.ForEach(1, func(_, _ int) error { return nil }) // want `call into exec while s is locked`
}

// badSeqBump mutates the seqlock word outside the window helpers: the
// mutation is invisible to the pairing rule (seq is not a mutex) but
// tears the reader protocol.
func (e *Engine) badSeqBump(s *seqState) {
	s.seq.Add(1) // want `seqlock word mutated outside lockShard/unlockShard`
}

// badSeqStore is the same violation through Store.
func (e *Engine) badSeqStore(s *seqState) {
	s.seq.Store(0) // want `seqlock word mutated outside lockShard/unlockShard`
}

// badPublish stores the view pointer directly, skipping the chokepoint's
// window assertion and accounting.
func (e *Engine) badPublish(s *seqState, t *table) {
	s.lockShard()
	defer s.unlockShard()
	s.view.Store(t) // want `shard view stored outside publish`
}
