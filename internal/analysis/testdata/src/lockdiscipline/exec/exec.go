// Package exec is a fixture stub of the real pool API, just enough
// surface for the shard fixture to call into.
package exec

// Config parameterizes a stub pool.
type Config struct {
	Workers int
}

// Pool is the stub executor.
type Pool struct{ cfg Config }

// NewPool builds a stub pool.
func NewPool(cfg Config) *Pool { return &Pool{cfg: cfg} }

// ForEach runs fn over n tasks inline.
func (p *Pool) ForEach(n int, fn func(worker, task int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(0, i); err != nil {
			return err
		}
	}
	return nil
}

// RunTasks is the one-shot spelling.
func RunTasks(cfg Config, n int, fn func(worker, task int) error) error {
	return NewPool(cfg).ForEach(n, fn)
}
