// Package bad matches taxonomy errors structurally — every pattern here
// silently stops seeing the error as soon as somebody wraps it.
package bad

import (
	"fmt"

	"errtaxonomy/table"
)

func classify(err error) string {
	if err == table.ErrFull { // want `ErrFull compared with ==: use errors\.Is`
		return "full"
	}
	if err != table.ErrFull { // want `ErrFull compared with !=: use errors\.Is`
		return "not-full"
	}
	if fe, ok := err.(*table.FullError); ok { // want `type assert to \*FullError on an error: use errors\.As`
		return fmt.Sprint(fe.Cap)
	}
	switch err.(type) {
	case *table.FullError: // want `type switch case \*FullError on an error: use errors\.As`
		return "full"
	}
	return ""
}

func resurface(err error) error {
	return fmt.Errorf("put failed: %v", err) // want `fmt\.Errorf without %w`
}

func fatal(err error) {
	panic(fmt.Sprintf("put failed: %v", err)) // want `panic\(fmt\.Sprintf\(\.\.\., err\)\) flattens`
}
