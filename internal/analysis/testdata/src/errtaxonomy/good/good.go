// Package good matches taxonomy errors through errors.Is/errors.As and
// keeps the chain intact with %w: nothing here diagnoses.
package good

import (
	"errors"
	"fmt"

	"errtaxonomy/table"
)

func classify(err error) string {
	if errors.Is(err, table.ErrFull) {
		return "full"
	}
	var fe *table.FullError
	if errors.As(err, &fe) {
		return fmt.Sprint(fe.Cap)
	}
	return ""
}

func resurface(err error) error {
	return fmt.Errorf("put failed: %w", err)
}

func fatal(err error) {
	panic(fmt.Errorf("put failed: %w", err))
}

// localSentinel is not taxonomy: == on a local error value is fine.
var localSentinel = errors.New("local")

func local(err error) bool { return err == localSentinel }
