// Package table is a fixture stub of the real table error taxonomy:
// one sentinel, one concrete wrapper, chained with Unwrap exactly like
// repro/table.
package table

import "errors"

// ErrFull is the sentinel refusal of a table at capacity.
var ErrFull = errors.New("table: full")

// FullError carries the occupancy at refusal and wraps ErrFull.
type FullError struct {
	Len, Cap int
}

func (e *FullError) Error() string { return "table: full" }
func (e *FullError) Unwrap() error { return ErrFull }

// Put refuses everything; the fixtures only need an error source.
func Put(key, val uint64) error { return &FullError{Len: 1, Cap: 1} }
