// Package obs stands in for the real telemetry package: cache-line
// padded atomic stripes, a mutex-guarded registry, and pull-based
// snapshots. Its path base is NOT in the exec/shard allowlist, so it
// must stay silent the honest way — by owning no goroutines, channels,
// or WaitGroups at all. Atomics and plain mutexes are fine everywhere;
// the analyzer only polices the primitives that spawn or join
// concurrent work.
package obs

import (
	"sync"
	"sync/atomic"
)

// stripe is one cache-line padded counter cell.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// counter spreads increments across stripes to keep writers off each
// other's cache lines; readers fold the stripes on demand.
type counter struct {
	stripes []stripe
	mask    int
}

func newCounter(n int) *counter {
	size := 1
	for size < n {
		size <<= 1
	}
	return &counter{stripes: make([]stripe, size), mask: size - 1}
}

func (c *counter) add(hint int, d uint64) {
	c.stripes[hint&c.mask].v.Add(d)
}

func (c *counter) value() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// registry is the pull-based export surface: snapshots happen on the
// caller's goroutine under a plain mutex, never on a background one.
type registry struct {
	mu       sync.Mutex
	counters map[string]*counter
}

func (r *registry) register(name string, c *counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*counter)
	}
	r.counters[name] = c
}

func (r *registry) snapshot() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.value()
	}
	return out
}

var _ = func() *registry {
	r := &registry{}
	c := newCounter(4)
	c.add(1, 2)
	r.register("demo", c)
	r.snapshot()
	return r
}()
