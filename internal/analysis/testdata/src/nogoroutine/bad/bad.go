// Package bad hand-rolls a worker pool: the exact pattern PR 5 removed
// from join/agg/partition/workload when the exec pool became the one
// concurrency owner. Every primitive in it is a diagnostic.
package bad

import "sync"

func fanOut(n int) int {
	var wg sync.WaitGroup          // want `sync\.WaitGroup outside exec/shard`
	results := make(chan int, n)   // want `raw channel construction outside exec/shard`
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `go statement outside exec/shard`
			defer wg.Done()
			results <- i * i
		}(i)
	}
	wg.Wait()
	close(results)
	total := 0
	for r := range results {
		total += r
	}
	return total
}
