// Package exec stands in for the real pool: its path base is "exec", so
// raw concurrency primitives are its job and none of them diagnose.
package exec

import "sync"

func fanOut(n int) int {
	var wg sync.WaitGroup
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- i * i
		}(i)
	}
	wg.Wait()
	close(results)
	total := 0
	for r := range results {
		total += r
	}
	return total
}
