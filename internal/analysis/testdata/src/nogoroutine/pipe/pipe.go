// Package pipe stands in for the real streaming-operator pipeline: lazy
// stream composition, fused per-row stage chains, and per-worker batch
// buffers whose safety comes from the batchSink delivery contract (one
// worker, one buffer), not from locks. Its path base is NOT in the
// exec/shard allowlist, so it must stay silent the honest way — all
// scheduling is delegated to the pool; the package itself owns no
// goroutines, channels, or WaitGroups.
package pipe

// stage is one fused filter/map step.
type stage func(k, v uint64) (uint64, uint64, bool)

// stream is a lazy plan: a source column plus the fused stage chain.
type stream struct {
	keys   []uint64
	stages []stage
}

// filter appends a predicate stage without running anything.
func (s *stream) filter(pred func(k, v uint64) bool) *stream {
	return &stream{keys: s.keys, stages: append(s.stages[:len(s.stages):len(s.stages)],
		func(k, v uint64) (uint64, uint64, bool) { return k, v, pred(k, v) })}
}

// batch is one worker's reusable output buffer: private to that worker
// by the delivery contract, so no lock guards it.
type batch struct {
	keys, vals []uint64
}

// run drives the plan serially here; the real package hands this loop to
// exec.Pool morsel-by-morsel and the shape is identical — no primitive
// the analyzer polices appears in either.
func (s *stream) run(workers int, sink func(worker int, keys []uint64) error) error {
	bufs := make([]batch, workers)
	for w := range bufs {
		bufs[w].keys = make([]uint64, 0, len(s.keys))
	}
	b := &bufs[0]
	for _, k := range s.keys {
		k, _, keep := s.apply(k, 0)
		if keep {
			b.keys = append(b.keys, k)
		}
	}
	return sink(0, b.keys)
}

func (s *stream) apply(k, v uint64) (uint64, uint64, bool) {
	for _, st := range s.stages {
		var keep bool
		if k, v, keep = st(k, v); !keep {
			return k, v, false
		}
	}
	return k, v, true
}
