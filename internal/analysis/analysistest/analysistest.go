// Package analysistest runs the repo's analyzers over fixture packages
// and checks their diagnostics against // want comments. It mirrors the
// x/tools harness of the same name on the standard library alone.
//
// Fixture layout: <testdata>/src/<import/path>/*.go. Imports inside a
// fixture resolve fixture-first — so a stub package named table or exec
// can stand in for the real repro packages, exercising the analyzers'
// package-base matching — and fall back to the source importer for the
// standard library (which works offline from GOROOT/src).
//
// A comment of the form
//
//	s.mu.Lock() // want `Lock\(\) without a matching Unlock`
//
// expects exactly one diagnostic on its line whose message matches the
// regexp; several patterns on one comment expect several diagnostics.
// Both backquoted and double-quoted patterns are accepted. Diagnostics
// with no matching want, and wants with no matching diagnostic, fail
// the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the caller's testdata directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each fixture package and applies the analyzer, reporting
// every mismatch between diagnostics and want comments as a test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		t.Run(strings.ReplaceAll(pkgPath, "/", "_"), func(t *testing.T) {
			runOne(t, testdata, a, pkgPath)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	res, err := l.loadFixture(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	wants := collectWants(t, l.fset, res.files)

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Fset:      l.fset,
		Files:     res.files,
		Pkg:       res.pkg,
		TypesInfo: res.info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkgPath, err)
	}

	for _, d := range got {
		pos := l.fset.Position(d.Pos)
		if w := matchWant(wants, pos, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// want is one expected diagnostic: a file, a line, and a message regexp.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// matchWant finds an unconsumed expectation on the diagnostic's line
// whose pattern matches the message.
func matchWant(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// wantArgRe tokenizes the patterns of a want comment: backquoted or
// double-quoted strings.
var wantArgRe = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// collectWants extracts the expectations from // want comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				toks := wantArgRe.FindAllString(text, -1)
				if len(toks) == 0 {
					t.Fatalf("%s: malformed want comment: %q", pos, c.Text)
				}
				for _, tok := range toks {
					pat := tok[1 : len(tok)-1]
					if tok[0] == '"' {
						var err error
						if pat, err = strconv.Unquote(tok); err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, tok, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, tok, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// loaded is one type-checked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages, resolving imports fixture-first
// and deferring to the source importer for the standard library.
type loader struct {
	fset *token.FileSet
	src  string
	std  types.Importer
	pkgs map[string]*loaded
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		src:  src,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*loaded{},
	}
}

// Import implements types.Importer over the fixture tree and stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if res, ok := l.pkgs[path]; ok {
		return res.pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		res, err := l.loadFixture(path)
		if err != nil {
			return nil, err
		}
		return res.pkg, nil
	}
	return l.std.Import(path)
}

// loadFixture parses and type-checks one fixture package by import path.
func (l *loader) loadFixture(path string) (*loaded, error) {
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: l, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	res := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = res
	return res, nil
}
