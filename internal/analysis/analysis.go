package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// An Analyzer is one invariant checker: a name (the identifier used in
// diagnostics and on the repolint command line), a doc string, and a Run
// function applied to one type-checked package at a time. The shape
// deliberately mirrors golang.org/x/tools/go/analysis so the suite could
// migrate to the upstream framework wholesale if the dependency ever
// becomes available; until then the driver protocol (cmd/repolint) and
// the fixture harness (analysistest) are reimplemented on the standard
// library.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one package: the parsed files, the
// type-checked package object, and the use/def/type maps. Report is
// supplied by the driver.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // filled in by the driver
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full invariant suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		NoGoroutine,
		ErrTaxonomy,
		UnsafeConfine,
		LockDiscipline,
		CtxPropagate,
	}
}

// PkgBase returns the last element of a package path, normalizing the
// test-variant suffix the go command appends ("repro/table
// [repro/table.test]" -> "table"). The analyzers' allowlists are keyed
// on this base so they apply identically to the real module paths and
// the short fixture paths of the analysistest harness.
func PkgBase(pkgPath string) string {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	return path.Base(pkgPath)
}

// isTestFile reports whether the file's name marks it as a test file.
// The invariants govern production code; tests legitimately spawn bare
// goroutines, compare errors structurally, and build throwaway configs.
func (p *Pass) isTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// sourceFiles yields the non-test files of the pass.
func (p *Pass) sourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.isTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// typeOf returns the static type of e, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// errorIface is the universe error interface, for Implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t implements error.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// isErrorInterface reports whether t is the error interface itself
// (possibly behind a name).
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

// namedFrom unwraps pointers and returns the named type behind t, or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if alias, ok := t.(*types.Alias); ok {
		t = types.Unalias(alias)
	}
	named, _ := t.(*types.Named)
	return named
}

// typeIs reports whether t (possibly behind a pointer) is the named type
// pkgBase.name, with the package matched by path base (see PkgBase).
func typeIs(t types.Type, pkgBase, name string) bool {
	named := namedFrom(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && PkgBase(obj.Pkg().Path()) == pkgBase
}

// isExecPkg reports whether pkgPath names the repo's exec package. The
// match is by path base so the fixture stubs qualify too, with the one
// standard-library collision (os/exec) excluded explicitly.
func isExecPkg(pkgPath string) bool {
	return PkgBase(pkgPath) == "exec" && pkgPath != "os/exec"
}

// pkgOfIdentIsExec reports whether sel's qualifier resolves to an
// imported package whose path base is "exec" — i.e. the expression is a
// direct reference into the exec package (exec.RunTasks, exec.NewPool,
// exec.Config{...}).
func (p *Pass) isExecPkgSelector(sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	return ok && isExecPkg(pn.Imported().Path())
}

// isExecCall reports whether call invokes something in the exec package:
// a package-level function (exec.RunTasks) or a method on an exec type
// (pool.ForEach with pool an *exec.Pool).
func (p *Pass) isExecCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if p.isExecPkgSelector(sel) {
		return true
	}
	if named := namedFrom(p.typeOf(sel.X)); named != nil {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
			return isExecPkg(obj.Pkg().Path())
		}
	}
	return false
}
