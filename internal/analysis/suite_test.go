package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs over at least one fixture that must diagnose and
// one that must stay silent, so both the teeth and the allowlists are
// pinned.

func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoGoroutine,
		// obs is the telemetry package's padded-counter/registry idiom:
		// atomics and mutexes only, outside the allowlist, silent. pipe is
		// the streaming-operator idiom: per-worker buffers safe by the
		// delivery contract, all scheduling delegated — also silent.
		"nogoroutine/bad", "nogoroutine/exec", "nogoroutine/obs",
		"nogoroutine/pipe")
}

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ErrTaxonomy,
		"errtaxonomy/bad", "errtaxonomy/good")
}

func TestUnsafeConfine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.UnsafeConfine,
		"unsafeconfine/bad", "unsafeconfine/table")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockDiscipline,
		"lockdiscipline/shard",
		// Not package shard: the discipline does not apply.
		"lockdiscipline/exec")
}

func TestCtxPropagate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.CtxPropagate,
		// pipe mirrors the streaming runtime's construction: the good
		// newRuntime threads cfg.Ctx into the pool, the leaky variant
		// diagnoses.
		"ctxpropagate/bad", "ctxpropagate/good", "ctxpropagate/pipe")
}

func TestPkgBase(t *testing.T) {
	for _, tt := range []struct{ in, want string }{
		{"repro/table", "table"},
		{"repro/table [repro/table.test]", "table"},
		{"errtaxonomy/table", "table"},
		{"os/exec", "exec"},
		{"exec", "exec"},
	} {
		if got := analysis.PkgBase(tt.in); got != tt.want {
			t.Errorf("PkgBase(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
