// Package analysis is the repo's invariant suite: custom static
// analyzers that turn the architectural rules established by PRs 4–6
// from prose in CHANGES.md into compiler-checked facts. The suite runs
// in CI (and locally) through cmd/repolint, a `go vet -vettool`
// multichecker.
//
// # The invariants
//
//	rule                                        analyzer        why
//	----                                        --------        ---
//	all concurrency flows through exec/shard    nogoroutine     bounded fan-out, first-error, panic containment (PR 5)
//	typed errors matched via errors.Is/As,      errtaxonomy     the FullError -> DegradedError -> %w chain must stay
//	re-surfaced only with %w                                    inspectable end to end (PR 6)
//	unsafe only in table/policy.go,             unsafeconfine   unsafe aliasing stays where checkptr/ASan and
//	internal/vec                                                FuzzColumnView exercise it (PR 4)
//	shard locks paired in-function; factory     lockdiscipline  incremental resize and degraded mode assume the
//	calls only via allocTable; no exec calls                    chokepoint and the lock ownership rules (PR 3/6)
//	under a shard lock
//	Config.Ctx threaded into exec.Config        ctxpropagate    accepted contexts must reach the pool, or the
//	                                                            work is uncancellable (PR 6)
//
// # Running
//
//	go build -o /tmp/repolint ./cmd/repolint
//	go vet -vettool=/tmp/repolint ./...
//
// or, equivalently, `go run ./cmd/repolint ./...` (the driver re-execs
// itself under go vet). Each analyzer is exercised by an analysistest
// fixture suite under testdata/src, with bad fixtures proving the
// analyzer fires and good fixtures pinning the allowed idioms.
//
// The framework types (Analyzer, Pass, Diagnostic) mirror
// golang.org/x/tools/go/analysis, reimplemented on the standard library
// because this module is dependency-free; if the x/tools dependency is
// ever adopted, the analyzers port by swapping the import.
package analysis
