package analysis

import (
	"go/ast"
	"go/types"
)

// CtxPropagate enforces the PR 6 cancellation contract: a function that
// accepts a Config carrying a Ctx field (join.Config, partition.Config,
// workload's RWConfig/ChaosConfig, ...) must thread that context into
// the exec.Config values it builds. An exec.Config composite literal
// without a Ctx element inside such a function silently launches
// uncancellable work — the caller's context is accepted and then
// dropped on the floor.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "exec.Config built inside a Config-carrying function must thread the Config's Ctx",
	Run:  runCtxPropagate,
}

// hasCtxField reports whether the (possibly pointer) named struct type t
// has a field Ctx of type context.Context.
func hasCtxField(t types.Type) bool {
	named := namedFrom(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Ctx" && typeIs(f.Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// ctxConfigParam returns the name of a parameter whose type is a named
// struct called Config (or a *Config, or a Config-suffixed config type
// like RWConfig) carrying a Ctx field — excluding exec.Config itself,
// which is the destination, not the source.
func (p *Pass) ctxConfigParam(fd *ast.FuncDecl) (string, bool) {
	if fd.Type.Params == nil {
		return "", false
	}
	for _, field := range fd.Type.Params.List {
		t := p.typeOf(field.Type)
		if t == nil || typeIs(t, "exec", "Config") || !hasCtxField(t) {
			continue
		}
		named := namedFrom(t)
		if named == nil || !isConfigName(named.Obj().Name()) {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name, true
		}
		return "_", true
	}
	return "", false
}

// isConfigName matches Config and the FooConfig naming convention.
func isConfigName(name string) bool {
	const suffix = "Config"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

func runCtxPropagate(pass *Pass) error {
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cfgName, ok := pass.ctxConfigParam(fd)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[cl]
				if !ok || !typeIs(tv.Type, "exec", "Config") {
					return true
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						return true // positional literal: every field, Ctx included, is set
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Ctx" {
						return true
					}
				}
				pass.Reportf(cl.Pos(), "exec.Config built without Ctx while %s carries one: thread %s.Ctx so the caller's cancellation reaches the pool", cfgName, cfgName)
				return true
			})
		}
	}
	return nil
}
