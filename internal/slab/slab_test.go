package slab

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestAllocZeroed(t *testing.T) {
	a := New(4)
	for i := 0; i < 20; i++ {
		e := a.Alloc()
		if e.Key != 0 || e.Val != 0 || e.Next != nil {
			t.Fatalf("alloc %d returned dirty entry %+v", i, *e)
		}
		e.Key, e.Val = uint64(i), uint64(i)
	}
	if a.Live() != 20 {
		t.Fatalf("Live = %d, want 20", a.Live())
	}
	if a.Chunks() != 5 {
		t.Fatalf("Chunks = %d, want 5 with chunk size 4", a.Chunks())
	}
}

func TestFreeListReuse(t *testing.T) {
	a := New(8)
	e1 := a.Alloc()
	e1.Key = 1
	a.Free(e1)
	e2 := a.Alloc()
	if e2 != e1 {
		t.Fatal("freed entry was not recycled first")
	}
	if e2.Key != 0 || e2.Next != nil {
		t.Fatalf("recycled entry not zeroed: %+v", *e2)
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d, want 1", a.Live())
	}
}

func TestFootprint(t *testing.T) {
	a := New(100)
	if a.FootprintBytes() != 0 {
		t.Fatalf("empty allocator footprint = %d", a.FootprintBytes())
	}
	a.Alloc()
	if got, want := a.FootprintBytes(), uint64(100*EntrySize); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
	for i := 0; i < 100; i++ { // forces a second chunk
		a.Alloc()
	}
	if got, want := a.FootprintBytes(), uint64(200*EntrySize); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
}

func TestNewWithCapacitySingleChunk(t *testing.T) {
	a := NewWithCapacity(1000)
	for i := 0; i < 1000; i++ {
		a.Alloc()
	}
	if a.Chunks() != 1 {
		t.Fatalf("pre-sized allocator used %d chunks for its capacity", a.Chunks())
	}
	a.Alloc()
	if a.Chunks() != 2 {
		t.Fatalf("overflow should open a second chunk, got %d", a.Chunks())
	}
	if NewWithCapacity(0) == nil {
		t.Fatal("NewWithCapacity(0) returned nil")
	}
}

func TestReset(t *testing.T) {
	a := New(16)
	for i := 0; i < 100; i++ {
		a.Alloc()
	}
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("Live after reset = %d", a.Live())
	}
	if a.Chunks() != 1 {
		t.Fatalf("Reset retained %d chunks, want 1", a.Chunks())
	}
	e := a.Alloc()
	if e.Key != 0 || e.Next != nil {
		t.Fatalf("post-reset alloc returned dirty entry %+v", *e)
	}
}

func TestDefaultChunkSize(t *testing.T) {
	a := New(0)
	if a.chunkEntries != DefaultChunkEntries {
		t.Fatalf("chunkEntries = %d, want default %d", a.chunkEntries, DefaultChunkEntries)
	}
	a = New(-5)
	if a.chunkEntries != DefaultChunkEntries {
		t.Fatalf("negative chunk size not defaulted: %d", a.chunkEntries)
	}
}

// TestChurnNoDuplicates property-tests the free list: the set of live
// entries handed out must always be distinct pointers.
func TestChurnNoDuplicates(t *testing.T) {
	prop := func(seed uint64) bool {
		a := New(8)
		rng := prng.NewXoshiro256(seed)
		live := map[*Entry]bool{}
		for i := 0; i < 500; i++ {
			if rng.Uint64n(3) == 0 && len(live) > 0 {
				for e := range live {
					delete(live, e)
					a.Free(e)
					break
				}
				continue
			}
			e := a.Alloc()
			if live[e] {
				return false // double-handed-out pointer
			}
			live[e] = true
		}
		return a.Live() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
