// Package slab implements the bulk entry allocator the paper's chained
// hash tables rely on (§2.1).
//
// A naive chained hash table performs one malloc per insert and one free per
// delete; the paper reports that replacing this with a slab allocator —
// bulk-allocating entries in large arrays and handing them out sequentially
// — improved insert performance by up to an order of magnitude and reduced
// the memory footprint (less fragmentation, no per-allocation metadata).
//
// This package is the Go rendering of that allocator: entries are allocated
// in fixed-size chunks ([]Entry arrays), handed out sequentially, and
// recycled through an intrusive free list threaded over the Next pointer.
// Allocating from a chunk is a bump of an index; the garbage collector never
// sees per-entry allocations.
package slab

// Entry is a chained hash table entry: a key-value pair plus the chain
// pointer. With 8-byte key, 8-byte value and 8-byte pointer it occupies the
// paper's 24 bytes.
type Entry struct {
	Key  uint64
	Val  uint64
	Next *Entry
}

// EntrySize is the in-memory size of one Entry in bytes.
const EntrySize = 24

// DefaultChunkEntries is the default number of entries per chunk (64 Ki
// entries = 1.5 MiB per chunk).
const DefaultChunkEntries = 1 << 16

// Allocator hands out Entry values from bulk-allocated chunks.
//
// The zero value is NOT ready to use; call New. An Allocator is not safe
// for concurrent use, matching the paper's single-threaded setting.
type Allocator struct {
	chunks       [][]Entry
	cursor       int // next unused index in the last chunk
	free         *Entry
	chunkEntries int
	liveCount    int // entries handed out and not yet freed
	freeCount    int // entries on the free list
}

// New returns an Allocator that allocates chunkEntries entries per chunk.
// If chunkEntries <= 0, DefaultChunkEntries is used.
func New(chunkEntries int) *Allocator {
	if chunkEntries <= 0 {
		chunkEntries = DefaultChunkEntries
	}
	return &Allocator{chunkEntries: chunkEntries}
}

// NewWithCapacity returns an Allocator pre-sized so that the first n
// allocations come from a single chunk. This is the paper's "size known in
// advance" fast path for WORM builds.
func NewWithCapacity(n int) *Allocator {
	if n <= 0 {
		n = 1
	}
	a := &Allocator{chunkEntries: n}
	a.chunks = append(a.chunks, make([]Entry, n))
	return a
}

// Alloc returns a zeroed entry. Freed entries are recycled before new chunk
// space is used.
func (a *Allocator) Alloc() *Entry {
	a.liveCount++
	if e := a.free; e != nil {
		a.free = e.Next
		a.freeCount--
		*e = Entry{}
		return e
	}
	if len(a.chunks) == 0 || a.cursor == len(a.chunks[len(a.chunks)-1]) {
		a.chunks = append(a.chunks, make([]Entry, a.chunkEntries))
		a.cursor = 0
	}
	c := a.chunks[len(a.chunks)-1]
	e := &c[a.cursor]
	a.cursor++
	return e
}

// Free returns an entry to the allocator for reuse. The entry must have been
// obtained from Alloc on this allocator and must not be used after Free.
func (a *Allocator) Free(e *Entry) {
	e.Next = a.free
	e.Key = 0
	e.Val = 0
	a.free = e
	a.freeCount++
	a.liveCount--
}

// Reset discards all entries while keeping the allocated chunks for reuse.
// All outstanding entries become invalid.
func (a *Allocator) Reset() {
	a.free = nil
	a.freeCount = 0
	a.liveCount = 0
	if len(a.chunks) > 0 {
		// Keep only the first chunk to bound retained memory, but reuse it.
		a.chunks = a.chunks[:1]
	}
	a.cursor = 0
}

// Live returns the number of entries currently handed out.
func (a *Allocator) Live() int { return a.liveCount }

// FootprintBytes returns the total bytes held by the allocator's chunks.
// This is the slab contribution to a chained table's memory footprint.
func (a *Allocator) FootprintBytes() uint64 {
	var total uint64
	for _, c := range a.chunks {
		total += uint64(len(c)) * EntrySize
	}
	return total
}

// Chunks returns the number of chunks allocated so far (for tests and
// diagnostics).
func (a *Allocator) Chunks() int { return len(a.chunks) }
