// Package cachesim is a small set-associative LRU cache model used to
// *measure* the paper's §7 cache-line analysis instead of only computing
// it: probe address traces from the hash tables are replayed through a
// modeled cache, giving touched-line and miss counts for the AoS and SoA
// layouts (the paper's "AoS loads roughly 1.85x more cache lines than SoA
// at 90% load factor" argument).
//
// The model is deliberately minimal — physical addresses are the virtual
// offsets the tables use, there is no prefetcher (the paper disabled
// prefetching in BIOS), and replacement is exact LRU per set. That is
// enough to reproduce line-count arithmetic and capacity behaviour; it is
// not a timing model.
package cachesim

import "fmt"

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	lineBytes uint64
	sets      uint64
	ways      int
	// tags[set] holds up to ways line tags in LRU order (index 0 = MRU).
	tags [][]uint64

	accesses uint64
	misses   uint64
}

// New builds a cache of totalBytes capacity with the given associativity
// and line size. totalBytes must be divisible by ways*lineBytes and the
// resulting set count must be a power of two.
func New(totalBytes, ways, lineBytes int) (*Cache, error) {
	if totalBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cachesim: non-positive geometry %d/%d/%d", totalBytes, ways, lineBytes)
	}
	if totalBytes%(ways*lineBytes) != 0 {
		return nil, fmt.Errorf("cachesim: %dB not divisible into %d ways of %dB lines", totalBytes, ways, lineBytes)
	}
	sets := totalBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	c := &Cache{
		lineBytes: uint64(lineBytes),
		sets:      uint64(sets),
		ways:      ways,
		tags:      make([][]uint64, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint64, 0, ways)
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(totalBytes, ways, lineBytes int) *Cache {
	c, err := New(totalBytes, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Access touches one byte address and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr / c.lineBytes
	set := line & (c.sets - 1)
	tag := line / c.sets
	ts := c.tags[set]
	for i, t := range ts {
		if t == tag {
			// Move to MRU.
			copy(ts[1:i+1], ts[:i])
			ts[0] = tag
			return true
		}
	}
	c.misses++
	if len(ts) < c.ways {
		ts = append(ts, 0)
	}
	copy(ts[1:], ts)
	ts[0] = tag
	c.tags[set] = ts
	return false
}

// AccessRange touches every line in [addr, addr+size) and returns the
// number of misses.
func (c *Cache) AccessRange(addr, size uint64) int {
	misses := 0
	first := addr / c.lineBytes
	last := (addr + size - 1) / c.lineBytes
	for line := first; line <= last; line++ {
		if !c.Access(line * c.lineBytes) {
			misses++
		}
	}
	return misses
}

// Accesses returns the total accesses so far.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the total misses so far.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 when nothing was accessed).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
	c.accesses = 0
	c.misses = 0
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return int(c.lineBytes) }
