package cachesim

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	if _, err := New(0, 8, 64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(1000, 8, 64); err == nil {
		t.Error("non-divisible size accepted")
	}
	if _, err := New(3*8*64, 8, 64); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if c := MustNew(32<<10, 8, 64); c.LineBytes() != 64 {
		t.Error("line size lost")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(-1, 1, 1)
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(1<<10, 2, 64)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Fatal("same line missed")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %v", c.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 1 set: capacity 2 lines.
	c := MustNew(2*64, 2, 64)
	c.Access(0 * 64) // A
	c.Access(1 * 64) // B     (LRU: A)
	c.Access(0 * 64) // A hit (LRU: B)
	if c.Access(2 * 64) {
		t.Fatal("C should miss")
	} // evicts B
	if !c.Access(0 * 64) {
		t.Fatal("A should survive (was MRU)")
	}
	if c.Access(1 * 64) {
		t.Fatal("B should have been evicted")
	}
}

func TestSetMapping(t *testing.T) {
	// 2 sets: lines alternate sets; filling one set must not evict the
	// other.
	c := MustNew(2*2*64, 2, 64) // 2 sets x 2 ways
	c.Access(0 * 64)            // set 0
	c.Access(2 * 64)            // set 0
	c.Access(4 * 64)            // set 0 -> evicts line 0
	if !c.Access(1*64) == false {
		t.Fatal("set 1 unexpectedly warm")
	}
	if c.Access(0 * 64) {
		t.Fatal("line 0 should have been evicted from set 0")
	}
}

func TestAccessRange(t *testing.T) {
	c := MustNew(1<<12, 4, 64)
	if m := c.AccessRange(0, 64); m != 1 {
		t.Fatalf("one-line range missed %d", m)
	}
	if m := c.AccessRange(60, 8); m != 1 { // crosses into line 1
		t.Fatalf("straddling range missed %d (line 0 warm, line 1 cold)", m)
	}
	if m := c.AccessRange(0, 256); m != 2 { // lines 0,1 warm; 2,3 cold
		t.Fatalf("4-line range missed %d, want 2", m)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(1<<10, 2, 64)
	c.Access(0)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 || c.MissRate() != 0 {
		t.Fatal("counters survived reset")
	}
	if c.Access(0) {
		t.Fatal("contents survived reset")
	}
}

// TestWorkingSetProperty: any working set that fits the cache has no
// misses after the first pass.
func TestWorkingSetProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		c := MustNew(1<<12, 4, 64) // 64 lines
		lines := 32
		// First pass: all cold.
		for i := 0; i < lines; i++ {
			c.Access(uint64(i) * 64)
		}
		// Steady state: everything hits.
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < lines; i++ {
				if !c.Access(uint64(i) * 64) {
					return false
				}
			}
		}
		return c.Misses() == uint64(lines)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
