package vec

import (
	"testing"
	"testing/quick"
)

func TestCmpEq4Masks(t *testing.T) {
	cases := []struct {
		l    [4]uint64
		n    uint64
		want Mask4
	}{
		{[4]uint64{1, 2, 3, 4}, 5, 0b0000},
		{[4]uint64{1, 2, 3, 4}, 1, 0b0001},
		{[4]uint64{1, 2, 3, 4}, 4, 0b1000},
		{[4]uint64{7, 7, 7, 7}, 7, 0b1111},
		{[4]uint64{0, 9, 0, 9}, 0, 0b0101},
	}
	for _, c := range cases {
		if got := CmpEq4(c.l[0], c.l[1], c.l[2], c.l[3], c.n); got != c.want {
			t.Errorf("CmpEq4(%v, %d) = %04b, want %04b", c.l, c.n, got, c.want)
		}
	}
}

func TestMask4FirstAndNone(t *testing.T) {
	if !Mask4(0).None() {
		t.Error("Mask4(0).None() = false")
	}
	if Mask4(0b0100).None() {
		t.Error("nonzero mask reported None")
	}
	firsts := map[Mask4]int{
		0b0001: 0, 0b0010: 1, 0b0100: 2, 0b1000: 3,
		0b1010: 1, 0b1111: 0, 0b1100: 2,
	}
	for m, want := range firsts {
		if got := m.First(); got != want {
			t.Errorf("Mask4(%04b).First() = %d, want %d", m, got, want)
		}
	}
}

func TestLoadSoA4(t *testing.T) {
	keys := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	a, b, c, d := LoadSoA4(keys, 4)
	if a != 14 || b != 15 || c != 16 || d != 17 {
		t.Fatalf("LoadSoA4 = %d,%d,%d,%d", a, b, c, d)
	}
}

func TestGatherAoS4(t *testing.T) {
	// Interleaved key/value: keys at even indexes.
	kv := []uint64{1, 100, 2, 200, 3, 300, 4, 400, 5, 500, 6, 600, 7, 700, 8, 800}
	a, b, c, d := GatherAoS4(kv, 2) // slots 2..5 -> keys 3,4,5,6
	if a != 3 || b != 4 || c != 5 || d != 6 {
		t.Fatalf("GatherAoS4 = %d,%d,%d,%d", a, b, c, d)
	}
}

func TestFindEqHelpers(t *testing.T) {
	keys := []uint64{9, 8, 7, 6, 5, 4, 3, 2}
	if m := FindEqSoA4(keys, 0, 7); m != 0b0100 {
		t.Fatalf("FindEqSoA4 = %04b", m)
	}
	if m := FindEqSoA4(keys, 4, 2); m != 0b1000 {
		t.Fatalf("FindEqSoA4 tail = %04b", m)
	}
	kv := []uint64{9, 0, 8, 0, 7, 0, 6, 0}
	if m := FindEqAoS4(kv, 0, 8); m != 0b0010 {
		t.Fatalf("FindEqAoS4 = %04b", m)
	}
}

func TestFindEqOrEmpty(t *testing.T) {
	const empty = 0
	keys := []uint64{5, 0, 6, 0}
	hit, stop := FindEqOrEmptySoA4(keys, 0, 6, empty)
	if hit != 0b0100 {
		t.Fatalf("hit = %04b", hit)
	}
	if stop != 0b1010 {
		t.Fatalf("stop = %04b", stop)
	}
	kv := []uint64{5, 50, 0, 0, 6, 60, 0, 0}
	hit, stop = FindEqOrEmptyAoS4(kv, 0, 5, empty)
	if hit != 0b0001 {
		t.Fatalf("AoS hit = %04b", hit)
	}
	if stop != 0b1010 {
		t.Fatalf("AoS stop = %04b", stop)
	}
}

// TestCmpEq4MatchesScalar property-tests the kernel against the scalar
// definition.
func TestCmpEq4MatchesScalar(t *testing.T) {
	prop := func(l0, l1, l2, l3, n uint64, pick uint8) bool {
		// Sometimes force matches so the all-different case doesn't
		// dominate the sample.
		switch pick % 5 {
		case 0:
			l0 = n
		case 1:
			l1 = n
		case 2:
			l2 = n
		case 3:
			l3 = n
		}
		got := CmpEq4(l0, l1, l2, l3, n)
		var want Mask4
		for i, l := range [4]uint64{l0, l1, l2, l3} {
			if l == n {
				want |= 1 << i
			}
		}
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWidthConstant(t *testing.T) {
	if Width != 4 {
		t.Fatalf("Width = %d, want 4 (256-bit registers of 64-bit keys)", Width)
	}
}
