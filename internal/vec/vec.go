// Package vec provides portable 4-lane uint64 comparison kernels that stand
// in for the AVX-2 intrinsics used in §7 of the paper.
//
// The paper's SIMD experiment loads four 8-byte keys into a 256-bit register
// (_mm256_load_si256), compares them against the probe key in one
// instruction (_mm256_cmpeq_epi64) and extracts the first matching lane
// from a movemask (_mm256_movemask_pd). Go with only the standard library
// cannot emit those instructions, so this package reproduces the
// *algorithmic structure*: four keys are compared per step with branch-free
// lane comparisons that compile to SETcc/CMOV, the results are packed into a
// 4-bit mask, and the first set bit selects the match — exactly the shape of
// the intrinsic code, minus the data-level parallelism of real vector ALUs.
//
// Two load flavours mirror the paper's layouts:
//
//   - SoA: keys are densely packed ([]uint64), so a "vector load" is four
//     consecutive elements — the cheap case.
//   - AoS: keys are interleaved with values (stride 2), so the four lanes
//     must be gathered from non-contiguous slots — the expensive case the
//     paper attributes to gather-scatter addressing on Haswell.
//
// The relative shape (SoA benefits more from vectorized probing than AoS)
// survives this translation; absolute SIMD speedups of course do not. See
// DESIGN.md's substitution table.
package vec

import "math/bits"

// Width is the number of lanes per vector step, matching 256-bit AVX-2
// registers holding 4 x 64-bit keys.
const Width = 4

// Mask4 is a 4-bit lane mask; bit i is set when lane i matched.
type Mask4 uint8

// None reports whether no lane matched.
func (m Mask4) None() bool { return m == 0 }

// First returns the index of the first matching lane. It must only be
// called when m is nonzero.
func (m Mask4) First() int { return bits.TrailingZeros8(uint8(m)) }

// b2u converts a bool to 0/1 without a branch in the generated code.
func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// CmpEq4 compares the four lanes against needle and returns the lane mask.
// This is the stand-in for _mm256_cmpeq_epi64 + movemask.
func CmpEq4(l0, l1, l2, l3, needle uint64) Mask4 {
	return Mask4(b2u(l0 == needle) |
		b2u(l1 == needle)<<1 |
		b2u(l2 == needle)<<2 |
		b2u(l3 == needle)<<3)
}

// LoadSoA4 loads four consecutive keys starting at keys[i]. The caller must
// guarantee i+3 < len(keys). This is the cheap, aligned SoA vector load.
func LoadSoA4(keys []uint64, i int) (uint64, uint64, uint64, uint64) {
	k := keys[i : i+4 : i+4]
	return k[0], k[1], k[2], k[3]
}

// GatherAoS4 gathers four keys from an interleaved key/value array where
// keys sit at even indices (AoS layout flattened to []uint64, stride 2).
// The four extra address computations per step model the gather penalty the
// paper measured on Haswell.
func GatherAoS4(kv []uint64, slot int) (uint64, uint64, uint64, uint64) {
	base := slot * 2
	k := kv[base : base+8 : base+8]
	return k[0], k[2], k[4], k[6]
}

// FindEqSoA4 returns the lane mask of needle within the four keys starting
// at keys[i].
func FindEqSoA4(keys []uint64, i int, needle uint64) Mask4 {
	l0, l1, l2, l3 := LoadSoA4(keys, i)
	return CmpEq4(l0, l1, l2, l3, needle)
}

// FindEqAoS4 returns the lane mask of needle within the four AoS slots
// starting at slot.
func FindEqAoS4(kv []uint64, slot int, needle uint64) Mask4 {
	l0, l1, l2, l3 := GatherAoS4(kv, slot)
	return CmpEq4(l0, l1, l2, l3, needle)
}

// FindEqOrEmptySoA4 probes the four keys at keys[i..i+3] for either needle
// or the empty sentinel, returning both masks in one pass. Linear-probing
// lookups need both: a needle hit is a successful lookup, an empty hit
// terminates an unsuccessful one.
func FindEqOrEmptySoA4(keys []uint64, i int, needle, empty uint64) (hit, stop Mask4) {
	l0, l1, l2, l3 := LoadSoA4(keys, i)
	return CmpEq4(l0, l1, l2, l3, needle), CmpEq4(l0, l1, l2, l3, empty)
}

// FindEqOrEmptyAoS4 is FindEqOrEmptySoA4 for the interleaved AoS layout.
func FindEqOrEmptyAoS4(kv []uint64, slot int, needle, empty uint64) (hit, stop Mask4) {
	l0, l1, l2, l3 := GatherAoS4(kv, slot)
	return CmpEq4(l0, l1, l2, l3, needle), CmpEq4(l0, l1, l2, l3, empty)
}
