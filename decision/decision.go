// Package decision implements the paper's Figure 8: the suggested decision
// graph that maps a workload description to a concrete ⟨hashing scheme,
// hash function⟩ choice.
//
// The graph is reconstructed from Figure 8's nodes and the paper's inline
// conclusions (the figure's terminals are ChainedH24, LPMult, QPMult,
// RHMult and CH4Mult, all with Mult as the function — §5.2: "no hash table
// is the absolute best using Murmur"):
//
//   - Load factor < 50% (§5.1): "LPMult is the way to go if most queries
//     are successful (>= 50%), and ChainedH24 must be considered
//     otherwise."
//   - Write-heavy workloads (§6): "quadratic probing looks as the best
//     option in general"; chained and Cuckoo hashing "should be avoided
//     for write-heavy workloads". For a static build over densely
//     distributed keys, LPMult wins inserts instead (§5.2, Figure 4(a):
//     45M vs 35M inserts/second at 90% load factor).
//   - Read-mostly at high load factors (§5.2): "RH is always among the top
//     performers ... an excellent all-rounder unless the hash table is
//     expected to be very full, or the amount of unsuccessful queries is
//     rather large. In such cases, CuckooH4 and ChainedH24 would be better
//     options, respectively, if their slow insertion times are
//     acceptable." CuckooH4 clearly surpasses the probing schemes from
//     ~80% load factor on (§5.2); at very high unsuccessful-lookup rates
//     ChainedH24 wins but only fits the §4.5 memory budget up to ~50–70%
//     load factor.
//
// The walk itself lives in table.Recommend so that table.Open can apply it
// through the WithWorkload option without an import cycle; this package
// wraps it in the paper-style Choice with its audit trail. Every
// recommendation carries the path of decisions taken, so the choice is
// auditable against the paper.
package decision

import (
	"fmt"
	"math/bits"
	"runtime"

	"repro/table"
)

// Workload describes the anticipated usage of the hash table. It is an
// alias of table.Workload, so a decision.Workload can be passed directly
// to table.Open's WithWorkload option.
type Workload = table.Workload

// Choice is a recommendation: a scheme, a hash-function family name, and
// the audit trail of decisions that led there. The JSON tags back
// cmd/decide's -json output.
type Choice struct {
	Scheme table.Scheme `json:"scheme"`
	Family string       `json:"family"` // always "Mult" per the paper's Figure 8
	// Shards is the recommended shard count for concurrent use (the
	// argument to table.Open's WithPartitions), set when the workload was
	// described with an expected thread count > 1; zero means
	// single-threaded use, no striping.
	Shards int `json:"shards,omitempty"`
	// Workers is the recommended exec.Config.Workers for the parallel
	// operators (joins, parallel aggregation, partition build/probe), set
	// alongside Shards when the thread count is > 1; zero means
	// single-threaded use, no pool.
	Workers int      `json:"workers,omitempty"`
	Path    []string `json:"path"`
}

// Label returns the paper-style table label, e.g. "RHMult".
func (c Choice) Label() string {
	if c.Scheme == table.SchemeCuckooH4 {
		return "CH4" + c.Family // Figure 8 abbreviates CuckooH4 as CH4
	}
	return string(c.Scheme) + c.Family
}

// String returns the label and the decision path.
func (c Choice) String() string {
	return fmt.Sprintf("%s (path: %v)", c.Label(), c.Path)
}

// ShardsFor returns the recommended shard count for a table shared by
// threads concurrent goroutines: the power of two >= 2x the thread count,
// so collisions on a shard lock stay rare even under uniform routing
// (birthday bound), while the per-shard tables stay large enough to keep
// the paper's cache behavior. Zero (no striping) is returned for
// single-threaded use; absurd thread counts clamp rather than overflow.
func ShardsFor(threads int) int {
	if threads <= 1 {
		return 0
	}
	if threads > 1<<30 {
		threads = 1 << 30
	}
	return 1 << bits.Len(uint(2*threads-1))
}

// WorkersFor returns the recommended exec worker count (exec.Config's
// Workers) for an operator driven on behalf of threads concurrent
// callers: the thread count itself, clamped to runtime.GOMAXPROCS —
// shards want headroom over the thread count so lock collisions stay
// rare (ShardsFor's 2x), but workers are CPU-bound, and oversubscribing
// cores only adds scheduling overhead. Zero (no pool) is returned for
// single-threaded use, mirroring ShardsFor.
func WorkersFor(threads int) int {
	if threads <= 1 {
		return 0
	}
	if g := runtime.GOMAXPROCS(0); threads > g {
		return g
	}
	return threads
}

// Recommend walks the Figure 8 decision graph for w.
func Recommend(w Workload) (Choice, error) {
	scheme, path, err := table.Recommend(w)
	if err != nil {
		return Choice{}, err
	}
	return Choice{Scheme: scheme, Family: "Mult", Path: path}, nil
}

// MustRecommend is Recommend that panics on invalid input.
func MustRecommend(w Workload) Choice {
	c, err := Recommend(w)
	if err != nil {
		panic(err)
	}
	return c
}
