// Package decision implements the paper's Figure 8: the suggested decision
// graph that maps a workload description to a concrete ⟨hashing scheme,
// hash function⟩ choice.
//
// The graph below is reconstructed from Figure 8's nodes and the paper's
// inline conclusions (the figure's terminals are ChainedH24, LPMult,
// QPMult, RHMult and CH4Mult, all with Mult as the function — §5.2: "no
// hash table is the absolute best using Murmur"):
//
//   - Load factor < 50% (§5.1): "LPMult is the way to go if most queries
//     are successful (>= 50%), and ChainedH24 must be considered
//     otherwise."
//   - Write-heavy workloads (§6): "quadratic probing looks as the best
//     option in general"; chained and Cuckoo hashing "should be avoided
//     for write-heavy workloads". For a static build over densely
//     distributed keys, LPMult wins inserts instead (§5.2, Figure 4(a):
//     45M vs 35M inserts/second at 90% load factor).
//   - Read-mostly at high load factors (§5.2): "RH is always among the top
//     performers ... an excellent all-rounder unless the hash table is
//     expected to be very full, or the amount of unsuccessful queries is
//     rather large. In such cases, CuckooH4 and ChainedH24 would be better
//     options, respectively, if their slow insertion times are
//     acceptable." CuckooH4 clearly surpasses the probing schemes from
//     ~80% load factor on (§5.2); at very high unsuccessful-lookup rates
//     ChainedH24 wins but only fits the §4.5 memory budget up to ~50–70%
//     load factor.
//
// Every recommendation carries the path of decisions taken, so the choice
// is auditable against the paper.
package decision

import (
	"fmt"

	"repro/table"
)

// Workload describes the anticipated usage of the hash table: the subset
// of the paper's seven dimensions that the *user* controls (scheme and
// function being the two outputs).
type Workload struct {
	// LoadFactor is the expected operating load factor (0,1): entries
	// divided by the slots the memory budget allows.
	LoadFactor float64
	// UnsuccessfulPct is the expected percentage of lookups probing keys
	// that are absent (0–100).
	UnsuccessfulPct int
	// WriteHeavy indicates more writes (inserts+deletes) than reads.
	WriteHeavy bool
	// Dynamic indicates the table grows/shrinks over its lifetime (OLTP);
	// false means a static build-then-probe use (OLAP/WORM).
	Dynamic bool
	// Dense indicates densely distributed integer keys (e.g. generated
	// primary keys, [1:n] or an arithmetic progression).
	Dense bool
}

// Choice is a recommendation: a scheme, a hash-function family name, and
// the audit trail of decisions that led there.
type Choice struct {
	Scheme table.Scheme
	Family string // always "Mult" per the paper's Figure 8
	Path   []string
}

// Label returns the paper-style table label, e.g. "RHMult".
func (c Choice) Label() string {
	if c.Scheme == table.SchemeCuckooH4 {
		return "CH4" + c.Family // Figure 8 abbreviates CuckooH4 as CH4
	}
	return string(c.Scheme) + c.Family
}

// String returns the label and the decision path.
func (c Choice) String() string {
	return fmt.Sprintf("%s (path: %v)", c.Label(), c.Path)
}

// Validate reports whether the workload's fields are in range.
func (w Workload) Validate() error {
	if w.LoadFactor <= 0 || w.LoadFactor >= 1 {
		return fmt.Errorf("decision: load factor %v outside (0,1)", w.LoadFactor)
	}
	if w.UnsuccessfulPct < 0 || w.UnsuccessfulPct > 100 {
		return fmt.Errorf("decision: unsuccessful-lookup percentage %d outside [0,100]", w.UnsuccessfulPct)
	}
	return nil
}

// Recommend walks the Figure 8 decision graph for w.
func Recommend(w Workload) (Choice, error) {
	if err := w.Validate(); err != nil {
		return Choice{}, err
	}
	c := Choice{Family: "Mult"}
	trace := func(format string, args ...any) {
		c.Path = append(c.Path, fmt.Sprintf(format, args...))
	}

	if w.LoadFactor < 0.5 {
		trace("load factor %.0f%% < 50%%", w.LoadFactor*100)
		if w.UnsuccessfulPct <= 50 {
			trace("lookups mostly successful (%d%% unsuccessful <= 50%%) -> LPMult", w.UnsuccessfulPct)
			c.Scheme = table.SchemeLP
			return c, nil
		}
		trace("lookups mostly unsuccessful (%d%% > 50%%) -> ChainedH24", w.UnsuccessfulPct)
		c.Scheme = table.SchemeChained24
		return c, nil
	}
	trace("load factor %.0f%% >= 50%%", w.LoadFactor*100)

	if w.WriteHeavy {
		trace("writes > reads")
		if w.Dynamic {
			trace("dynamic (growing) table -> QPMult (best RW performer, §6)")
			c.Scheme = table.SchemeQP
			return c, nil
		}
		if w.Dense {
			trace("static build over dense keys -> LPMult (dense+Mult is LP's best case, §5.2)")
			c.Scheme = table.SchemeLP
			return c, nil
		}
		trace("static build, non-dense keys -> QPMult (best inserts at high load factors, §5.2)")
		c.Scheme = table.SchemeQP
		return c, nil
	}
	trace("reads >= writes")

	if w.UnsuccessfulPct > 50 {
		trace("unsuccessful lookups dominate (%d%% > 50%%)", w.UnsuccessfulPct)
		if w.LoadFactor >= 0.9 {
			trace("load factor >= 90%% -> CH4Mult (lookups insensitive to load factor and misses)")
			c.Scheme = table.SchemeCuckooH4
			return c, nil
		}
		if w.LoadFactor <= 0.7 {
			trace("load factor <= 70%% -> ChainedH24 (wins degenerate miss-heavy probes and fits the §4.5 budget)")
			c.Scheme = table.SchemeChained24
			return c, nil
		}
		trace("load factor in (70%%, 90%%) -> RHMult (early abort tames misses, up to 4x over LP)")
		c.Scheme = table.SchemeRH
		return c, nil
	}
	trace("lookups mostly successful (%d%% unsuccessful <= 50%%)", w.UnsuccessfulPct)

	if w.LoadFactor >= 0.8 {
		trace("table very full (load factor >= 80%%) -> CH4Mult (surpasses probing schemes from ~80%%, §5.2)")
		c.Scheme = table.SchemeCuckooH4
		return c, nil
	}
	if w.Dense {
		trace("dense keys at moderate load factor -> LPMult (approximate arithmetic progression, optimal locality)")
		c.Scheme = table.SchemeLP
		return c, nil
	}
	trace("general case -> RHMult (the paper's all-rounder: top performer in most cells of Figure 6)")
	c.Scheme = table.SchemeRH
	return c, nil
}

// MustRecommend is Recommend that panics on invalid input.
func MustRecommend(w Workload) Choice {
	c, err := Recommend(w)
	if err != nil {
		panic(err)
	}
	return c
}
