package decision

import (
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"repro/table"
)

func TestValidation(t *testing.T) {
	bad := []Workload{
		{LoadFactor: 0, UnsuccessfulPct: 0},
		{LoadFactor: 1, UnsuccessfulPct: 0},
		{LoadFactor: -0.5, UnsuccessfulPct: 0},
		{LoadFactor: 0.5, UnsuccessfulPct: -1},
		{LoadFactor: 0.5, UnsuccessfulPct: 101},
	}
	for _, w := range bad {
		if _, err := Recommend(w); err == nil {
			t.Errorf("Recommend(%+v) accepted invalid workload", w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRecommend did not panic on invalid input")
		}
	}()
	MustRecommend(Workload{})
}

// TestPaperConclusions pins each terminal of Figure 8 to the workload the
// paper says it wins.
func TestPaperConclusions(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
		want table.Scheme
	}{
		// §5.1: "at low load factors (< 50%), LPMult is the way to go if
		// most queries are successful, and ChainedH24 must be considered
		// otherwise."
		{"lowLF mostly successful", Workload{LoadFactor: 0.3, UnsuccessfulPct: 10}, table.SchemeLP},
		{"lowLF mostly unsuccessful", Workload{LoadFactor: 0.3, UnsuccessfulPct: 90}, table.SchemeChained24},
		// §6: "in a write-heavy workload, quadratic probing looks as the
		// best option in general."
		{"dynamic write-heavy", Workload{LoadFactor: 0.7, WriteHeavy: true, Dynamic: true}, table.SchemeQP},
		{"static write-heavy sparse", Workload{LoadFactor: 0.9, WriteHeavy: true}, table.SchemeQP},
		// §5.2 Figure 4(a): LPMult wins inserts on dense keys.
		{"static write-heavy dense", Workload{LoadFactor: 0.9, WriteHeavy: true, Dense: true}, table.SchemeLP},
		// §5.2: "from a load factor of 80% on, CuckooH4 clearly surpasses
		// the other methods."
		{"read-mostly very full", Workload{LoadFactor: 0.85, UnsuccessfulPct: 10}, table.SchemeCuckooH4},
		{"miss-heavy and 90% full", Workload{LoadFactor: 0.95, UnsuccessfulPct: 80}, table.SchemeCuckooH4},
		// §5.2: ChainedH24 wins degenerate unsuccessful-lookup cases where
		// it fits memory.
		{"miss-heavy at 50-70%", Workload{LoadFactor: 0.6, UnsuccessfulPct: 90}, table.SchemeChained24},
		// §5.2: RH between those extremes.
		{"miss-heavy at 80%", Workload{LoadFactor: 0.8, UnsuccessfulPct: 80}, table.SchemeRH},
		// §5.2: "RH is an excellent all-rounder."
		{"read-mostly moderate", Workload{LoadFactor: 0.7, UnsuccessfulPct: 25}, table.SchemeRH},
		{"dense read-mostly moderate", Workload{LoadFactor: 0.7, UnsuccessfulPct: 25, Dense: true}, table.SchemeLP},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := MustRecommend(c.w)
			if got.Scheme != c.want {
				t.Fatalf("Recommend(%+v) = %s, want %s\npath: %v", c.w, got.Scheme, c.want, got.Path)
			}
			if got.Family != "Mult" {
				t.Fatalf("Family = %s; Figure 8 always picks Mult", got.Family)
			}
			if len(got.Path) == 0 {
				t.Fatal("empty decision path")
			}
		})
	}
}

// TestExhaustiveGraph walks a fine grid of the whole workload space: every
// point must produce a valid recommendation with a nonempty rationale, and
// the output must be one of the five Figure 8 terminals.
func TestExhaustiveGraph(t *testing.T) {
	terminals := map[table.Scheme]bool{
		table.SchemeLP: true, table.SchemeQP: true, table.SchemeRH: true,
		table.SchemeCuckooH4: true, table.SchemeChained24: true,
	}
	reached := map[table.Scheme]bool{}
	for lf := 5; lf <= 95; lf += 5 {
		for _, u := range []int{0, 25, 50, 75, 100} {
			for _, wh := range []bool{false, true} {
				for _, dyn := range []bool{false, true} {
					for _, dense := range []bool{false, true} {
						w := Workload{
							LoadFactor:      float64(lf) / 100,
							UnsuccessfulPct: u,
							WriteHeavy:      wh,
							Dynamic:         dyn,
							Dense:           dense,
						}
						c, err := Recommend(w)
						if err != nil {
							t.Fatalf("Recommend(%+v): %v", w, err)
						}
						if !terminals[c.Scheme] {
							t.Fatalf("Recommend(%+v) = %s, not a Figure 8 terminal", w, c.Scheme)
						}
						reached[c.Scheme] = true
					}
				}
			}
		}
	}
	for s := range terminals {
		if !reached[s] {
			t.Errorf("terminal %s unreachable in the grid sweep", s)
		}
	}
}

// TestQuickDeterminism: equal workloads yield equal recommendations.
func TestQuickDeterminism(t *testing.T) {
	prop := func(lf uint8, u uint8, wh, dyn, dense bool) bool {
		w := Workload{
			LoadFactor:      float64(lf%99+1) / 100,
			UnsuccessfulPct: int(u) % 101,
			WriteHeavy:      wh,
			Dynamic:         dyn,
			Dense:           dense,
		}
		a, err1 := Recommend(w)
		b, err2 := Recommend(w)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Scheme == b.Scheme && a.Label() == b.Label()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	c := MustRecommend(Workload{LoadFactor: 0.85, UnsuccessfulPct: 0})
	if c.Label() != "CH4Mult" {
		t.Fatalf("CuckooH4 label = %s, want CH4Mult (Figure 8's abbreviation)", c.Label())
	}
	c = MustRecommend(Workload{LoadFactor: 0.3, UnsuccessfulPct: 0})
	if c.Label() != "LPMult" {
		t.Fatalf("label = %s, want LPMult", c.Label())
	}
	if !strings.Contains(c.String(), "LPMult") {
		t.Fatalf("String() = %s", c.String())
	}
}

func TestWorkersFor(t *testing.T) {
	if got := WorkersFor(0); got != 0 {
		t.Fatalf("WorkersFor(0) = %d, want 0 (no pool)", got)
	}
	if got := WorkersFor(1); got != 0 {
		t.Fatalf("WorkersFor(1) = %d, want 0 (single-threaded)", got)
	}
	g := runtime.GOMAXPROCS(0)
	for _, threads := range []int{2, 4, 1 << 20} {
		got := WorkersFor(threads)
		want := threads
		if want > g {
			want = g
		}
		if got != want {
			t.Fatalf("WorkersFor(%d) = %d, want %d (threads clamped to GOMAXPROCS=%d)", threads, got, want, g)
		}
	}
}
