package dist

import "testing"

func TestKindByName(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindByName(string(k))
		if err != nil || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := KindByName("Zipf"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestDeterminism: two generators with the same (kind, seed) agree on every
// key; a different seed changes the sequence for the seeded distributions.
func TestDeterminism(t *testing.T) {
	const n = 4096
	for _, k := range Kinds() {
		a, b := New(k, 7), New(k, 7)
		for i := uint64(0); i < n; i++ {
			if a.Key(i) != b.Key(i) {
				t.Fatalf("%s: Key(%d) differs between equal seeds", k, i)
			}
		}
		if k == Dense {
			continue // dense is seed-independent by design
		}
		c := New(k, 8)
		same := 0
		for i := uint64(0); i < n; i++ {
			if a.Key(i) == c.Key(i) {
				same++
			}
		}
		if same == n {
			t.Fatalf("%s: seed change did not alter the sequence", k)
		}
	}
}

// TestCardinality: Keys(n) yields n distinct keys, and AbsentKeys(n, m) is
// disjoint from them — the injectivity contract every workload driver
// leans on.
func TestCardinality(t *testing.T) {
	const n, m = 1 << 14, 1 << 12
	for _, k := range Kinds() {
		gen := New(k, 42)
		keys := gen.Keys(n)
		if len(keys) != n {
			t.Fatalf("%s: Keys(%d) returned %d keys", k, n, len(keys))
		}
		seen := make(map[uint64]struct{}, n)
		for _, key := range keys {
			if _, dup := seen[key]; dup {
				t.Fatalf("%s: duplicate key %#x in Keys(%d)", k, key, n)
			}
			seen[key] = struct{}{}
		}
		for _, key := range gen.AbsentKeys(n, m) {
			if _, hit := seen[key]; hit {
				t.Fatalf("%s: AbsentKeys produced present key %#x", k, key)
			}
		}
	}
}

// TestMissRangeDisjoint covers the RW driver's guaranteed-miss index range
// (2^40 and up): even that far out, keys stay disjoint from a large prefix.
func TestMissRangeDisjoint(t *testing.T) {
	const n = 1 << 14
	for _, k := range Kinds() {
		gen := New(k, 3)
		seen := make(map[uint64]struct{}, n)
		for _, key := range gen.Keys(n) {
			seen[key] = struct{}{}
		}
		base := uint64(1) << 40
		for i := uint64(0); i < 1024; i++ {
			if _, hit := seen[gen.Key(base+i)]; hit {
				t.Fatalf("%s: miss-range key at index %d collides with prefix", k, base+i)
			}
		}
	}
}

func TestDenseIsConsecutive(t *testing.T) {
	gen := New(Dense, 99)
	for i := uint64(0); i < 100; i++ {
		if gen.Key(i) != i+1 {
			t.Fatalf("Dense Key(%d) = %d, want %d", i, gen.Key(i), i+1)
		}
	}
}

// TestGridBytes: every byte of a proper grid key is in [1, 14].
func TestGridBytes(t *testing.T) {
	gen := New(Grid, 5)
	for _, key := range gen.Keys(1 << 12) {
		for b := 0; b < 8; b++ {
			v := byte(key >> (8 * b))
			if v < 1 || v > gridValues {
				t.Fatalf("grid key %#x has byte %d = %d outside [1,%d]", key, b, v, gridValues)
			}
		}
	}
}

// TestShuffledIsPermutation: Shuffled preserves the multiset and leaves the
// input untouched.
func TestShuffledIsPermutation(t *testing.T) {
	gen := New(Sparse, 1)
	keys := gen.Keys(1 << 10)
	orig := make([]uint64, len(keys))
	copy(orig, keys)
	shuf := Shuffled(keys, 2)
	for i := range keys {
		if keys[i] != orig[i] {
			t.Fatal("Shuffled mutated its input")
		}
	}
	counts := map[uint64]int{}
	for _, k := range keys {
		counts[k]++
	}
	for _, k := range shuf {
		counts[k]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("Shuffled changed multiplicity of %#x by %d", k, c)
		}
	}
	moved := 0
	for i := range shuf {
		if shuf[i] != orig[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("Shuffled left the slice in identical order")
	}
}
