// Package dist implements the three key distributions of the paper's §4.3:
//
//   - Dense: the consecutive integers 1..n — the primary-key case, where
//     multiplicative hashing shines and tabulation's byte tables see only a
//     few hot rows.
//   - Sparse: keys drawn uniformly from the full 64-bit domain — the
//     hash-of-a-hash case with no exploitable structure.
//   - Grid: keys whose eight bytes each come from a small set of 14 values
//     ("think of IP addresses") — heavily structured input that exposes weak
//     hash functions, the paper's adversarial distribution.
//
// Distributions are exposed as indexed sequences rather than streams: a
// Generator maps an index i to the i-th key of the distribution, and two
// distinct indexes always map to two distinct keys. This makes the key
// universe addressable — Keys(n) materializes a prefix, AbsentKeys(n, m)
// draws m keys guaranteed absent from that prefix (indexes >= n), and the
// RW workload driver can reserve disjoint index ranges for fresh inserts
// and guaranteed-miss lookups without any bookkeeping.
//
// All sequences are deterministic functions of (Kind, seed), so every
// experiment replays bit-for-bit.
package dist

import (
	"fmt"

	"repro/internal/prng"
)

// Kind identifies one of the paper's key distributions.
type Kind string

// The three distributions of §4.3.
const (
	Dense  Kind = "Dense"
	Sparse Kind = "Sparse"
	Grid   Kind = "Grid"
)

// Kinds returns the distributions in the paper's presentation order.
func Kinds() []Kind { return []Kind{Dense, Sparse, Grid} }

// KindByName returns the distribution with the given name (case-sensitive:
// "Dense", "Sparse", "Grid").
func KindByName(name string) (Kind, error) {
	for _, k := range Kinds() {
		if string(k) == name {
			return k, nil
		}
	}
	return "", fmt.Errorf("dist: unknown distribution %q", name)
}

// Generator maps indexes to the keys of one distribution. Implementations
// are injective: distinct indexes yield distinct keys.
type Generator interface {
	// Kind returns the distribution this generator draws from.
	Kind() Kind
	// Key returns the i-th key of the sequence.
	Key(i uint64) uint64
	// Keys returns the first n keys, in index order. Callers that need a
	// random insertion order shuffle the result (see Shuffled).
	Keys(n int) []uint64
	// AbsentKeys returns m keys of the same distribution that are disjoint
	// from the first n (they occupy indexes n..n+m-1), for unsuccessful
	// lookup tapes.
	AbsentKeys(n, m int) []uint64
}

// New returns the generator of the given distribution. Dense ignores the
// seed (the sequence 1..n is fixed); Sparse and Grid derive their key
// material from it.
func New(kind Kind, seed uint64) Generator {
	switch kind {
	case Dense:
		return denseGen{}
	case Sparse:
		return sparseGen{base: prng.Mix(seed ^ 0x5a12e5eed00d1ce5)}
	case Grid:
		return newGridGen(seed)
	}
	panic(fmt.Sprintf("dist: unknown distribution %q", kind))
}

// Shuffled returns a pseudo-randomly permuted copy of keys, leaving the
// input untouched. The permutation is a deterministic function of seed.
func Shuffled(keys []uint64, seed uint64) []uint64 {
	out := make([]uint64, len(keys))
	copy(out, keys)
	prng.NewXoshiro256(seed).ShuffleUint64(out)
	return out
}

// materialize fills a fresh slice with keys at indexes [from, from+n).
func materialize(g Generator, from uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Key(from + uint64(i))
	}
	return out
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

// denseGen yields the consecutive integers 1, 2, 3, ... (starting at 1: key
// 0 exists in the tables' domain but starting the primary-key sequence at 1
// matches the paper and every real dense column).
type denseGen struct{}

func (denseGen) Kind() Kind            { return Dense }
func (denseGen) Key(i uint64) uint64   { return i + 1 }
func (g denseGen) Keys(n int) []uint64 { return materialize(g, 0, n) }
func (g denseGen) AbsentKeys(n, m int) []uint64 {
	return materialize(g, uint64(n), m)
}

// ---------------------------------------------------------------------------
// Sparse
// ---------------------------------------------------------------------------

// sparseGen yields a pseudo-random permutation of the 64-bit universe:
// Key(i) applies the (bijective) SplitMix64 output function to base+i, so
// keys are uniformly spread and injectivity is structural rather than
// probabilistic — no rejection bookkeeping, and any index range is valid.
type sparseGen struct {
	base uint64
}

func (sparseGen) Kind() Kind            { return Sparse }
func (g sparseGen) Key(i uint64) uint64 { return prng.Mix(g.base + i) }
func (g sparseGen) Keys(n int) []uint64 { return materialize(g, 0, n) }
func (g sparseGen) AbsentKeys(n, m int) []uint64 {
	return materialize(g, uint64(n), m)
}

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

// gridValues is the number of distinct values each key byte can take; the
// paper uses 14, giving 14^8 ≈ 1.48e9 addressable grid keys — more than any
// experiment in this repository inserts.
const gridValues = 14

// gridMax is the number of proper grid keys (14^8).
const gridMax = uint64(gridValues * gridValues * gridValues * gridValues *
	gridValues * gridValues * gridValues * gridValues)

// gridGen yields keys whose eight bytes each come from a seed-permuted set
// of 14 values in [1, 14]: index i is written in base 14 and each digit is
// mapped through a per-byte-position permutation. Distinct digits map to
// distinct byte values, so the encoding is injective.
//
// Indexes >= 14^8 (only the RW driver's guaranteed-miss range reaches that
// high) escape to keys with top byte 0xFF — not a legal grid byte — so they
// are injective too and never collide with proper grid keys.
type gridGen struct {
	vals [8][gridValues]uint64 // vals[pos][digit] = byte value << (8*pos)
}

func newGridGen(seed uint64) *gridGen {
	rng := prng.NewXoshiro256(seed ^ 0x6e1dd15717b17e5)
	g := &gridGen{}
	for pos := 0; pos < 8; pos++ {
		var perm [gridValues]uint64
		for d := range perm {
			perm[d] = uint64(d + 1) // byte values 1..14
		}
		rng.Shuffle(gridValues, func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		for d, v := range perm {
			g.vals[pos][d] = v << (8 * pos)
		}
	}
	return g
}

func (*gridGen) Kind() Kind { return Grid }

func (g *gridGen) Key(i uint64) uint64 {
	if i >= gridMax {
		// Escape range: top byte 0xFF cannot occur in a grid key.
		return 0xFF<<56 | (i - gridMax)
	}
	var k uint64
	for pos := 0; pos < 8; pos++ {
		k |= g.vals[pos][i%gridValues]
		i /= gridValues
	}
	return k
}

func (g *gridGen) Keys(n int) []uint64 { return materialize(g, 0, n) }
func (g *gridGen) AbsentKeys(n, m int) []uint64 {
	return materialize(g, uint64(n), m)
}
