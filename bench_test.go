// Benchmarks regenerating the paper's tables and figures, plus per-operation
// micro-benchmarks of every ⟨scheme, hash function⟩ combination.
//
// The figure benchmarks (BenchmarkFig2 ... BenchmarkFig7) wrap the bench
// package's runners at a laptop-friendly scale and report the paper's
// metric — millions of operations per second — via b.ReportMetric. Run the
// full-size sweeps with cmd/hashbench (-slots 24 and up).
//
// The micro-benchmarks (BenchmarkPut, BenchmarkLookupHit, ...) measure
// single operations the conventional testing.B way and are the right tool
// for comparing scheme/function inner-loop costs.
package repro_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/agg"
	"repro/bench"
	"repro/dist"
	"repro/hashfn"
	"repro/internal/prng"
	"repro/internal/slab"
	"repro/join"
	"repro/table"
	"repro/workload"
)

// benchOpts returns harness options sized for the Go benchmark runner: the
// WORM figures use 2^16 slots, the RW figure a 2^15-initial/2^19-op stream.
func benchOpts() bench.Options {
	return bench.Options{
		Capacity:  1 << 16,
		RWInitial: 1 << 13,
		RWOps:     1 << 19,
		Fig6Caps:  []int{1 << 12, 1 << 14, 1 << 16},
		Seed:      42,
	}
}

// reportBest surfaces a few representative numbers from a WORM figure so
// `go test -bench` output is directly comparable to the paper's panels.
func reportWORM(b *testing.B, exps []bench.WORMExperiment, lf int) {
	b.Helper()
	for _, e := range exps {
		for _, s := range e.Series {
			if v, ok := s.InsertMops[lf]; ok {
				b.ReportMetric(v, fmt.Sprintf("%s/%s:insert:Mops", e.Dist, s.Label))
			}
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (WORM, low load factors: chained
// variants vs linear probing) once per iteration.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exps, err := bench.RunFig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportWORM(b, exps, 45)
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (memory footprints at low load
// factors, dense distribution).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exps, err := bench.RunFig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows := bench.Fig3FromFig2(exps)
		if i == 0 {
			for _, r := range rows {
				if r.LoadFactor == 45 {
					b.ReportMetric(float64(r.MemoryBytes)/(1<<20), r.Label+":MB")
				}
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4 (WORM, high load factors: all
// open-addressing schemes plus ChainedH24 at 50%).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exps, err := bench.RunFig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportWORM(b, exps, 90)
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (the RW workload sweep over sparse
// keys).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exps, err := bench.RunFig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, e := range exps {
				if e.GrowAtPct != 70 {
					continue
				}
				for _, s := range e.Series {
					b.ReportMetric(s.Mops[50], fmt.Sprintf("grow70/%s:up50:Mops", s.Label))
				}
			}
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (the best-performer matrix).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Surface the large-capacity sparse winners at 90% as a probe.
			lf := 90
			cells := res.Lookup[dist.Sparse][lf]
			last := len(res.Capacities) - 1
			for mi, u := range bench.Mixes {
				c := cells[last][mi]
				b.ReportMetric(c.Mops, fmt.Sprintf("sparse/L/lf90/u%d:%s:Mops", u, c.Label))
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (AoS vs SoA layout, scalar vs
// vectorized probing).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.RunFig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(s.InsertMops[90], s.Label+":insert90:Mops")
				b.ReportMetric(s.LookupMops[90][100], s.Label+":lookup90u100:Mops")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: single operations per scheme and function
// ---------------------------------------------------------------------------

// microSchemes is every scheme the micro-benchmarks sweep — the full
// registry, including the LPSoA layout variant and the DH probe-kernel
// extension.
var microSchemes = table.AllSchemes()

var microFamilies = []hashfn.Family{hashfn.MultFamily{}, hashfn.MurmurFamily{}}

// BenchmarkPut measures growing inserts of sparse keys.
func BenchmarkPut(b *testing.B) {
	for _, s := range microSchemes {
		for _, f := range microFamilies {
			b.Run(string(s)+"/"+f.Name(), func(b *testing.B) {
				gen := dist.New(dist.Sparse, 1)
				keys := gen.Keys(b.N)
				m := table.MustNew(s, table.Config{
					InitialCapacity: 1 << 10,
					MaxLoadFactor:   0.7,
					Family:          f,
					Seed:            42,
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Put(keys[i], uint64(i))
				}
			})
		}
	}
}

// lookupBench builds a 70%-full fixed table and probes it with the given
// hit ratio.
func lookupBench(b *testing.B, s table.Scheme, f hashfn.Family, unsuccessfulPct int) {
	const capacity = 1 << 16
	n := capacity * 7 / 10
	m, err := workload.NewWORMTable(s, f, capacity, 0.7, 42)
	if err != nil {
		b.Fatal(err)
	}
	gen := dist.New(dist.Sparse, 1)
	keys := dist.Shuffled(gen.Keys(n), 2)
	for i, k := range keys {
		m.Put(k, uint64(i))
	}
	miss := n * unsuccessfulPct / 100
	probes := make([]uint64, 0, n)
	probes = append(probes, keys[:n-miss]...)
	probes = append(probes, gen.AbsentKeys(n, miss)...)
	probes = dist.Shuffled(probes, 3)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := m.Get(probes[i%len(probes)])
		sink ^= v
	}
	_ = sink
}

// BenchmarkLookupHit measures all-successful probes at 70% load factor.
func BenchmarkLookupHit(b *testing.B) {
	for _, s := range microSchemes {
		for _, f := range microFamilies {
			b.Run(string(s)+"/"+f.Name(), func(b *testing.B) { lookupBench(b, s, f, 0) })
		}
	}
}

// BenchmarkLookupMiss measures all-unsuccessful probes at 70% load factor —
// linear probing's worst case and Robin Hood's showcase.
func BenchmarkLookupMiss(b *testing.B) {
	for _, s := range microSchemes {
		for _, f := range microFamilies {
			b.Run(string(s)+"/"+f.Name(), func(b *testing.B) { lookupBench(b, s, f, 100) })
		}
	}
}

// BenchmarkHashFn measures raw hash-code computation for the four families
// (§4.4: "we could observe the effect of even one more instruction per hash
// code computation") plus the FNV and MultAdd32 extensions — the latter is
// the paper's predicted Mult-class MultAdd for 32-bit keys.
func BenchmarkHashFn(b *testing.B) {
	for _, f := range hashfn.ExtendedFamilies() {
		b.Run(f.Name(), func(b *testing.B) {
			fn := f.New(42)
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink ^= fn.Hash(uint64(i) * 0x9e3779b97f4a7c15)
			}
			_ = sink
		})
	}
}

// BenchmarkSlabVsNaive quantifies the §2.1 claim that slab allocation beats
// one-allocation-per-entry for chained hash tables. "build" is the WORM
// case (size known in advance, one bump-allocated arena); "churn" is the
// RW case (delete/insert pairs, where the slab free list recycles entries
// the naive variant keeps handing to the garbage collector). Go's runtime
// allocator is itself slab-like, so the paper's 10x (over C malloc/free)
// compresses here — the shape, slab >= naive, still holds.
func BenchmarkSlabVsNaive(b *testing.B) {
	b.Run("build/slab", func(b *testing.B) {
		a := slab.NewWithCapacity(b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := a.Alloc()
			e.Key = uint64(i)
		}
	})
	b.Run("build/naive", func(b *testing.B) {
		keep := make([]*slab.Entry, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := &slab.Entry{Key: uint64(i)} // one heap allocation per entry
			keep = append(keep, e)
		}
		_ = keep
	})
	b.Run("churn/slab", func(b *testing.B) {
		a := slab.New(1024)
		for i := 0; i < b.N; i++ {
			e := a.Alloc()
			e.Key = uint64(i)
			a.Free(e)
		}
	})
	b.Run("churn/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := &slab.Entry{Key: uint64(i)}
			escapeSink = e // forces a heap allocation; garbage next iteration
		}
	})
}

// BenchmarkVecLookup compares scalar and vectorized probe paths on both
// layouts (Figure 7's four variants) at 90% load factor, all-unsuccessful
// probes — where probe sequences are longest and vectorization matters
// most.
func BenchmarkVecLookup(b *testing.B) {
	const capacity = 1 << 16
	n := capacity * 9 / 10
	gen := dist.New(dist.Sparse, 1)
	keys := dist.Shuffled(gen.Keys(n), 2)
	probes := dist.Shuffled(gen.AbsentKeys(n, n), 3)

	aos := table.NewLinearProbing(table.Config{InitialCapacity: capacity, Seed: 42})
	soa := table.NewLinearProbingSoA(table.Config{InitialCapacity: capacity, Seed: 42})
	for i, k := range keys {
		aos.Put(k, uint64(i))
		soa.Put(k, uint64(i))
	}
	variants := []struct {
		name string
		get  func(uint64) (uint64, bool)
	}{
		{"AoS/scalar", aos.Get},
		{"AoS/vec", aos.GetVec},
		{"SoA/scalar", soa.Get},
		{"SoA/vec", soa.GetVec},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				val, _ := v.get(probes[i%len(probes)])
				sink ^= val
			}
			_ = sink
		})
	}
}

// escapeSink defeats escape analysis in the naive allocation benchmarks.
var escapeSink *slab.Entry

// ---------------------------------------------------------------------------
// Batched pipeline benchmarks: scalar vs GetBatch/PutBatch
// ---------------------------------------------------------------------------

// reportNsPerKey converts a benchmark that processes table.BatchWidth keys
// per iteration into the paper-tracking ns/key metric, and records the
// datapoint for the BENCH_table.json artifact.
func reportNsPerKey(b *testing.B) {
	reportKeyedNs(b, b.N*table.BatchWidth)
}

// reportKeyedNs reports ns/key for a benchmark that processed total keys,
// recording the datapoint for the BENCH_table.json artifact.
func reportKeyedNs(b *testing.B, total int) {
	ns := float64(b.Elapsed().Nanoseconds()) / float64(total)
	b.ReportMetric(ns, "ns/key")
	// The framework reruns a sub-benchmark with ramping b.N while
	// calibrating; keep only the final (longest) run's datapoint.
	if n := len(tableBenchResults); n > 0 && tableBenchResults[n-1].Case == b.Name() {
		tableBenchResults[n-1].NsPerKey = ns
		return
	}
	tableBenchResults = append(tableBenchResults, tableBenchPoint{Case: b.Name(), NsPerKey: ns})
}

// tableBenchPoint is one ⟨sub-benchmark, ns/key⟩ datapoint of the batch
// probe/insert sweeps.
type tableBenchPoint struct {
	Case     string  `json:"case"`
	NsPerKey float64 `json:"ns_per_key"`
}

// tableBenchResults accumulates datapoints across the batch benchmarks
// for the JSON artifact.
var tableBenchResults []tableBenchPoint

// writeTableBenchJSON dumps the accumulated ns/key datapoints to the file
// named by the BENCH_TABLE_JSON environment variable (the CI bench-smoke
// step uploads it as the BENCH_table.json artifact tracking the repo's
// batch-pipeline trajectory). Both batch benchmarks call it; the file is
// rewritten with everything collected so far, so the invocation order
// does not matter.
func writeTableBenchJSON(b *testing.B) {
	path := os.Getenv("BENCH_TABLE_JSON")
	if path == "" || len(tableBenchResults) == 0 {
		return
	}
	out, err := json.MarshalIndent(struct {
		Benchmark string            `json:"benchmark"`
		Points    []tableBenchPoint `json:"points"`
	}{Benchmark: "BenchmarkBatchProbe/BenchmarkBatchInsert", Points: tableBenchResults}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBatchProbe compares the scalar probe loop against the batched
// group-interleaved pipeline, per scheme and load factor, on an
// out-of-cache table (2^22 slots, 64 MiB AoS — past any L3, so the
// independent lane misses actually overlap) with a 75/25 hit/miss probe
// mix. Every iteration processes one BatchWidth-key batch, so ns/op values
// are directly comparable between the scalar and batch64 variants; ns/key
// is also reported for the BENCH trajectories.
//
// Expected shape: batching wins wherever probe sequences have cache-line
// locality (LP, LPSoA, RH, the chained schemes) or bounded candidate sets
// (Cuckoo), with the largest gains on out-of-cache tables. QP at very high
// load factors can tie or lose: its triangular jumps touch a fresh page
// almost every probe, so page-walk throughput — which batching cannot
// increase — dominates, and the paper's §7 observation that vectorization
// only helps linear probing carries over to batching.
func BenchmarkBatchProbe(b *testing.B) {
	const capacity = 1 << 22
	gen := dist.New(dist.Sparse, 1)
	for _, s := range microSchemes {
		for _, lf := range []int{50, 90} {
			if lf > 50 && (s == table.SchemeChained8 || s == table.SchemeChained24) {
				// The §4.5 memory budget leaves chained tables a degenerate
				// directory at high load factors; the paper drops those
				// points and so do we.
				continue
			}
			n := capacity * lf / 100
			m, err := workload.NewWORMTable(s, hashfn.MultFamily{}, capacity, float64(lf)/100, 42)
			if err != nil {
				b.Fatal(err)
			}
			keys := dist.Shuffled(gen.Keys(n), 2)
			table.PutBatch(m, keys, keys)
			miss := n / 4
			probes := make([]uint64, 0, n)
			probes = append(probes, keys[:n-miss]...)
			probes = append(probes, gen.AbsentKeys(n, miss)...)
			probes = dist.Shuffled(probes, 3)
			vals := make([]uint64, table.BatchWidth)
			oks := make([]bool, table.BatchWidth)
			name := fmt.Sprintf("%s/lf%d", s, lf)
			b.Run(name+"/scalar", func(b *testing.B) {
				var sink uint64
				pos := 0
				for i := 0; i < b.N; i++ {
					if pos+table.BatchWidth > len(probes) {
						pos = 0
					}
					for _, k := range probes[pos : pos+table.BatchWidth] {
						v, _ := m.Get(k)
						sink ^= v
					}
					pos += table.BatchWidth
				}
				_ = sink
				reportNsPerKey(b)
			})
			b.Run(fmt.Sprintf("%s/batch%d", name, table.BatchWidth), func(b *testing.B) {
				pos := 0
				for i := 0; i < b.N; i++ {
					if pos+table.BatchWidth > len(probes) {
						pos = 0
					}
					table.GetBatch(m, probes[pos:pos+table.BatchWidth], vals, oks)
					pos += table.BatchWidth
				}
				reportNsPerKey(b)
			})
		}
	}
	writeTableBenchJSON(b)
}

// BenchmarkBatchInsert compares scalar and batched WORM builds per scheme:
// each iteration bulk-loads a fresh pre-allocated table to 70% load factor.
func BenchmarkBatchInsert(b *testing.B) {
	const capacity = 1 << 16
	n := capacity * 7 / 10
	gen := dist.New(dist.Sparse, 1)
	keys := dist.Shuffled(gen.Keys(n), 2)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	for _, s := range microSchemes {
		fresh := func(b *testing.B) table.Map {
			m, err := workload.NewWORMTable(s, hashfn.MultFamily{}, capacity, 0.7, 42)
			if err != nil {
				b.Fatal(err)
			}
			return m
		}
		b.Run(string(s)+"/scalar", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := fresh(b)
				b.StartTimer()
				for j, k := range keys {
					m.Put(k, vals[j])
				}
			}
			reportKeyedNs(b, b.N*n)
		})
		b.Run(fmt.Sprintf("%s/batch%d", s, table.BatchWidth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := fresh(b)
				b.StartTimer()
				table.PutBatch(m, keys, vals)
			}
			reportKeyedNs(b, b.N*n)
		})
	}
	writeTableBenchJSON(b)
}

// BenchmarkHashJoin measures the classic build/probe equi-join per scheme:
// the paper's motivating query-processing use (§1).
func BenchmarkHashJoin(b *testing.B) {
	const buildN, probeN = 1 << 16, 1 << 18
	gen := dist.New(dist.Sparse, 1)
	buildKeys := gen.Keys(buildN)
	build := make(join.Relation, buildN)
	for i, k := range buildKeys {
		build[i] = join.Row{Key: k, Payload: uint64(i)}
	}
	rng := prng.NewXoshiro256(2)
	probe := make(join.Relation, probeN)
	for i := range probe {
		if rng.Uint64n(10) == 0 { // 10% dangling foreign keys
			probe[i] = join.Row{Key: gen.Key(uint64(buildN) + rng.Uint64n(1<<20)), Payload: uint64(i)}
		} else {
			probe[i] = join.Row{Key: buildKeys[rng.Intn(buildN)], Payload: uint64(i)}
		}
	}
	for _, s := range []table.Scheme{table.SchemeLP, table.SchemeRH, table.SchemeCuckooH4, table.SchemeChained24} {
		b.Run(string(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := join.HashJoin(build, probe, join.Config{Scheme: s, Seed: 42}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
	b.Run("Partitioned8xRH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.PartitionedHashJoin(build, probe, 8, join.Config{Scheme: table.SchemeRH, Seed: 42}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAggregateVsWORM reproduces the paper's §4 equivalence claim:
// aggregation throughput tracks the WORM numbers, because a GROUP BY over G
// groups is G inserts followed by (rows-G) successful lookups. The two
// sub-benchmarks run the same table at the same load factor; their ns/op
// should be of the same order.
func BenchmarkAggregateVsWORM(b *testing.B) {
	const groups = 1 << 14
	rng := prng.NewXoshiro256(3)
	b.Run("aggregate", func(b *testing.B) {
		g := agg.MustNewGroupBy(agg.Config{ExpectedGroups: groups, Seed: 42})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Add(rng.Uint64n(groups), uint64(i))
		}
	})
	b.Run("worm-lookup", func(b *testing.B) {
		m := table.NewQuadraticProbing(table.Config{InitialCapacity: groups * 2, MaxLoadFactor: 0.7, Seed: 42})
		for i := uint64(0); i < groups; i++ {
			m.Put(i, i)
		}
		var sink uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _ := m.Get(rng.Uint64n(groups))
			sink ^= v
		}
		_ = sink
	})
}
